open Relational

type term = Var of string | Cst of Value.t

type formula =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string list * formula
  | Forall of string list * formula
  | Ifp of fp * term list
  | Pfp of fp * term list
  | Witness of string list * formula

and fp = { rel : string; vars : string list; body : formula }

exception Undefined of string
exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* --- free variables ------------------------------------------------------ *)

let free_vars f =
  let out = ref [] in
  let note bound x =
    if (not (List.mem x bound)) && not (List.mem x !out) then out := x :: !out
  in
  let term bound = function Var x -> note bound x | Cst _ -> () in
  let rec go bound = function
    | True | False -> ()
    | Atom (_, ts) -> List.iter (term bound) ts
    | Eq (a, b) ->
        term bound a;
        term bound b
    | Not f -> go bound f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go bound a;
        go bound b
    | Exists (xs, f) | Forall (xs, f) -> go (xs @ bound) f
    | Ifp (fp, ts) | Pfp (fp, ts) ->
        (* the fixpoint's column variables are bound inside the body; the
           argument terms are free occurrences *)
        go (fp.vars @ bound) fp.body;
        List.iter (term bound) ts
    | Witness (_, f) ->
        (* witness variables remain free (the formula holds of the
           selected valuations) *)
        go bound f
  in
  go [] f;
  List.rev !out

(* --- constants ------------------------------------------------------------ *)

let constants f =
  let module VSet = Set.Make (Value) in
  let acc = ref VSet.empty in
  let term = function Cst v -> acc := VSet.add v !acc | Var _ -> () in
  let rec go = function
    | True | False -> ()
    | Atom (_, ts) -> List.iter term ts
    | Eq (a, b) ->
        term a;
        term b
    | Not f | Exists (_, f) | Forall (_, f) | Witness (_, f) -> go f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go a;
        go b
    | Ifp (fp, ts) | Pfp (fp, ts) ->
        go fp.body;
        List.iter term ts
  in
  go f;
  VSet.elements !acc

(* --- witness policies ------------------------------------------------------ *)

type policy = int -> Value.t list -> Tuple.t list -> Tuple.t

let first_policy _site _key candidates = List.hd candidates

let seeded_policy seed site key candidates =
  let h =
    List.fold_left
      (fun acc v -> (acc * 31) + Value.hash v)
      ((seed * 131) + site)
      key
  in
  List.nth candidates (abs h mod List.length candidates)

(* --- evaluation -------------------------------------------------------------- *)

(* Assign stable integer ids to Witness nodes (preorder, physical). *)
let number_witnesses f =
  let tbl = Hashtbl.create 8 in
  let counter = ref 0 in
  let rec go g =
    match g with
    | True | False | Eq _ | Atom _ -> ()
    | Not f | Exists (_, f) | Forall (_, f) -> go f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go a;
        go b
    | Ifp (fp, _) | Pfp (fp, _) -> go fp.body
    | Witness (_, inner) ->
        if not (Hashtbl.mem tbl (Obj.repr g)) then (
          Hashtbl.add tbl (Obj.repr g) !counter;
          incr counter);
        go inner
  in
  go f;
  fun w -> try Hashtbl.find tbl (Obj.repr w) with Not_found -> -1

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> type_error "unbound variable %s" x

let term_value env = function Var x -> lookup env x | Cst v -> v

(* Build a [holds] closure over a fixed domain and witness-choice memo.
   All queries evaluated through one closure share the same choice
   function, as the W semantics requires. *)
let make_holds ~policy inst f dom =
  let witness_id = number_witnesses f in
  let choices : (int * Value.t list, Tuple.t option) Hashtbl.t =
    Hashtbl.create 32
  in
  let lookup_rel relenv p =
    match List.assoc_opt p relenv with
    | Some r -> r
    | None -> Instance.find p inst
  in
  let rec holds relenv env f =
    match f with
    | True -> true
    | False -> false
    | Atom (p, ts) ->
        let tup = Tuple.of_list (List.map (term_value env) ts) in
        Relation.mem tup (lookup_rel relenv p)
    | Eq (a, b) -> Value.equal (term_value env a) (term_value env b)
    | Not f -> not (holds relenv env f)
    | And (a, b) -> holds relenv env a && holds relenv env b
    | Or (a, b) -> holds relenv env a || holds relenv env b
    | Implies (a, b) -> (not (holds relenv env a)) || holds relenv env b
    | Exists (xs, f) -> exists_val relenv env xs f
    | Forall (xs, f) -> not (exists_val relenv env xs (Not f))
    | Ifp (fp, ts) -> check_fp relenv env fp ts (eval_ifp relenv env fp)
    | Pfp (fp, ts) -> check_fp relenv env fp ts (eval_pfp relenv env fp)
    | Witness (xs, g) as w -> (
        let params =
          List.filter (fun v -> not (List.mem v xs)) (free_vars g)
        in
        let key = List.map (lookup env) params in
        let site = witness_id w in
        let chosen =
          match Hashtbl.find_opt choices (site, key) with
          | Some c -> c
          | None ->
              let candidates =
                satisfying relenv env xs g |> List.sort_uniq Tuple.compare
              in
              let c =
                match candidates with
                | [] -> None
                | _ -> Some (policy site key candidates)
              in
              Hashtbl.add choices (site, key) c;
              c
        in
        match chosen with
        | None -> false
        | Some c ->
            let current = Tuple.of_list (List.map (lookup env) xs) in
            Tuple.equal current c)
  and check_fp _relenv env fp ts j =
    let tup = Tuple.of_list (List.map (term_value env) ts) in
    if Tuple.arity tup <> List.length fp.vars then
      type_error "fixpoint %s: %d arguments for arity %d" fp.rel
        (Tuple.arity tup) (List.length fp.vars)
    else Relation.mem tup j
  and exists_val relenv env xs f =
    match xs with
    | [] -> holds relenv env f
    | x :: rest ->
        List.exists (fun v -> exists_val relenv ((x, v) :: env) rest f) dom
  and satisfying relenv env xs g =
    let rec enum env' = function
      | [] ->
          if holds relenv env' g then
            [ Tuple.of_list (List.map (lookup env') xs) ]
          else []
      | x :: rest ->
          List.concat_map (fun v -> enum ((x, v) :: env') rest) dom
    in
    enum env xs
  and stage relenv env fp j =
    Relation.of_list (satisfying ((fp.rel, j) :: relenv) env fp.vars fp.body)
  and eval_ifp relenv env fp =
    let rec loop j =
      let next = Relation.union j (stage relenv env fp j) in
      if Relation.equal next j then j else loop next
    in
    loop Relation.empty
  and eval_pfp relenv env fp =
    let module RSet = Set.Make (Relation) in
    let rec loop j seen =
      let next = stage relenv env fp j in
      if Relation.equal next j then j
      else if RSet.mem next seen then
        raise
          (Undefined (Printf.sprintf "PFP %s cycles without converging" fp.rel))
      else loop next (RSet.add next seen)
    in
    loop Relation.empty RSet.empty
  in
  holds

let make_dom inst f =
  let module VSet = Set.Make (Value) in
  VSet.elements
    (VSet.union
       (VSet.of_list (Instance.adom inst))
       (VSet.of_list (constants f)))

let eval ?(policy = first_policy) inst f vars =
  let fv = free_vars f in
  List.iter
    (fun x ->
      if not (List.mem x vars) then
        invalid_arg (Printf.sprintf "Fp.eval: free variable %s not listed" x))
    fv;
  let dom = make_dom inst f in
  let holds = make_holds ~policy inst f dom in
  let rec enum env = function
    | [] ->
        if holds [] env f then
          [ Tuple.of_list (List.map (fun x -> List.assoc x env) vars) ]
        else []
    | x :: rest -> List.concat_map (fun v -> enum ((x, v) :: env) rest) dom
  in
  Relation.of_list (enum [] vars)

let sentence ?(policy = first_policy) inst f =
  (match free_vars f with
  | [] -> ()
  | x :: _ -> invalid_arg (Printf.sprintf "Fp.sentence: free variable %s" x));
  let dom = make_dom inst f in
  let holds = make_holds ~policy inst f dom in
  holds [] [] f

(* Enumerate all outcomes: DFS over the tree of witness decisions. A path
   is a list of chosen indices in decision order; choices beyond the path
   default to index 0, and the run records each decision's candidate
   count, from which the next path is computed (mixed-radix DFS). *)
let outcomes ?(max_outcomes = 10_000) inst f vars =
  let results = ref [] in
  let runs = ref 0 in
  let rec run prefix =
    incr runs;
    if !runs > max_outcomes then
      failwith "Fp.outcomes: too many choice functions";
    let remaining = ref prefix in
    let counts = ref [] in
    let policy _site _key candidates =
      let idx =
        match !remaining with
        | i :: rest ->
            remaining := rest;
            i
        | [] -> 0
      in
      counts := List.length candidates :: !counts;
      List.nth candidates (min idx (List.length candidates - 1))
    in
    let r = eval ~policy inst f vars in
    if not (List.exists (Relation.equal r) !results) then
      results := r :: !results;
    let counts = List.rev !counts in
    let digits =
      List.mapi
        (fun i _ -> try List.nth prefix i with _ -> 0)
        counts
    in
    (* next path: bump the last digit with headroom, truncate after it *)
    let rec last_bumpable i best =
      match i with
      | _ when i >= List.length counts -> best
      | _ ->
          let d = List.nth digits i and c = List.nth counts i in
          last_bumpable (i + 1) (if d + 1 < c then Some i else best)
    in
    match last_bumpable 0 None with
    | None -> ()
    | Some i ->
        let next =
          List.init (i + 1) (fun j ->
              if j = i then List.nth digits j + 1 else List.nth digits j)
        in
        run next
  in
  run [];
  List.rev !results

(* --- constructors / printing -------------------------------------------------- *)

let ifp ~rel ~vars body ts = Ifp ({ rel; vars; body }, ts)
let pfp ~rel ~vars body ts = Pfp ({ rel; vars; body }, ts)
let atom p xs = Atom (p, List.map (fun x -> Var x) xs)

let pp_term ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Cst v -> Value.pp ppf v

let pp_vars ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
    Format.pp_print_string ppf xs

let pp_terms ppf ts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_term ppf ts

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom (p, ts) -> Format.fprintf ppf "%s(%a)" p pp_terms ts
  | Eq (a, b) -> Format.fprintf ppf "%a = %a" pp_term a pp_term b
  | Not f -> Format.fprintf ppf "\xc2\xac(%a)" pp f
  | And (a, b) -> Format.fprintf ppf "(%a \xe2\x88\xa7 %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a \xe2\x88\xa8 %a)" pp a pp b
  | Implies (a, b) -> Format.fprintf ppf "(%a \xe2\x86\x92 %a)" pp a pp b
  | Exists (xs, f) -> Format.fprintf ppf "\xe2\x88\x83%a (%a)" pp_vars xs pp f
  | Forall (xs, f) -> Format.fprintf ppf "\xe2\x88\x80%a (%a)" pp_vars xs pp f
  | Ifp (fp, ts) ->
      Format.fprintf ppf "[IFP_{%s,%a} %a](%a)" fp.rel pp_vars fp.vars pp
        fp.body pp_terms ts
  | Pfp (fp, ts) ->
      Format.fprintf ppf "[PFP_{%s,%a} %a](%a)" fp.rel pp_vars fp.vars pp
        fp.body pp_terms ts
  | Witness (xs, f) -> Format.fprintf ppf "W%a (%a)" pp_vars xs pp f
