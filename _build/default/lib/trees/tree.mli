(** Ordered labelled trees and their relational encoding — the substrate
    of the paper's §6 "Datalog for data extraction" story (Lixto): Gottlob
    and Koch showed that {e monadic} Datalog over trees, under the
    firstchild/nextsibling encoding, captures exactly MSO — enough for web
    wrappers, while evaluating in linear time.

    This module provides the trees, the standard relational encoding
    (evaluated by the ordinary engines of [lib/datalog]), and a check for
    the monadic fragment. *)

open Relational

type t = { label : string; children : t list }

(** [node label children] / [leaf label]. *)
val node : string -> t list -> t

val leaf : string -> t

(** [size t] — number of nodes. *)
val size : t -> int

(** [parse s] reads the compact syntax [label(child, child, ...)], e.g.
    ["html(body(item(txt), item(txt)))"]. Labels are identifiers.
    @raise Failure on malformed input. *)
val parse : string -> t

val to_string : t -> string

(** Relational encoding à la Gottlob–Koch. Node ids are the symbols
    [n0, n1, ...] in preorder. Relations:

    - [root(x)], [leaf(x)], [firstchild(x, y)], [nextsibling(x, y)],
      [lastchild(x, y)] ([y] is the last child of [x]),
      [child(x, y)] (derived convenience),
      [label_l(x)] for each label [l] occurring in the tree,
      [lab(x, l)] with the label as a symbol (for label-generic rules). *)
val to_instance : t -> Instance.t

(** [node_ids t] lists the preorder ids paired with labels — for decoding
    query answers. *)
val node_ids : t -> (string * string) list

(** [is_monadic p] — every idb predicate of [p] is unary (the
    Gottlob–Koch fragment; edb predicates of the encoding are exempt). *)
val is_monadic : Datalog.Ast.program -> bool

(** [select p inst pred t] — evaluate (semi-naive; the encodings are
    negation-free... programs may use stratified negation, in which case
    stratified evaluation is used) and decode the selected unary
    predicate back to the labels of the selected nodes, in preorder.
    @raise Datalog.Stratified.Not_stratifiable as the engine does. *)
val select : Datalog.Ast.program -> t -> string -> (string * string) list

(** Random tree generator for benches: [random ~seed ~depth ~width
    ~labels]. *)
val random : seed:int -> depth:int -> width:int -> labels:string list -> t
