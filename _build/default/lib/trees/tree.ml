open Relational

type t = { label : string; children : t list }

let node label children = { label; children }
let leaf label = { label; children = [] }

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children

(* --- parsing ------------------------------------------------------------- *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Tree.parse at %d: %s" !pos msg) in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let ident () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a label";
    String.sub s start (!pos - start)
  in
  let rec tree () =
    let label = ident () in
    skip_ws ();
    if !pos < n && s.[!pos] = '(' then (
      incr pos;
      skip_ws ();
      if !pos < n && s.[!pos] = ')' then (
        incr pos;
        { label; children = [] })
      else
        let rec children acc =
          let c = tree () in
          skip_ws ();
          if !pos < n && s.[!pos] = ',' then (
            incr pos;
            children (c :: acc))
          else if !pos < n && s.[!pos] = ')' then (
            incr pos;
            List.rev (c :: acc))
          else fail "expected , or )"
        in
        { label; children = children [] })
    else { label; children = [] }
  in
  let t = tree () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  t

let rec to_string t =
  match t.children with
  | [] -> t.label
  | cs ->
      Printf.sprintf "%s(%s)" t.label
        (String.concat ", " (List.map to_string cs))

(* --- relational encoding --------------------------------------------------- *)

type itree = Inode of string * string * itree list
(* (preorder id, label, children) *)

let assign_ids t =
  let counter = ref 0 in
  let rec go t =
    let id = Printf.sprintf "n%d" !counter in
    incr counter;
    let children = List.map go t.children in
    Inode (id, t.label, children)
  in
  go t

let node_ids t =
  let rec flatten (Inode (id, label, children)) =
    (id, label) :: List.concat_map flatten children
  in
  flatten (assign_ids t)

let to_instance t =
  let open Value in
  let v s = Sym s in
  let facts = ref [] in
  let add pred args = facts := (pred, List.map v args) :: !facts in
  let iid (Inode (i, _, _)) = i in
  let rec go (Inode (id, label, children)) =
    add ("label_" ^ label) [ id ];
    add "lab" [ id; label ];
    (match children with
    | [] -> add "leaf" [ id ]
    | first :: _ ->
        add "firstchild" [ id; iid first ];
        let rec last = function [ x ] -> x | _ :: t -> last t | [] -> first in
        add "lastchild" [ id; iid (last children) ];
        List.iter (fun c -> add "child" [ id; iid c ]) children;
        let rec siblings = function
          | a :: (b :: _ as rest) ->
              add "nextsibling" [ iid a; iid b ];
              siblings rest
          | _ -> ()
        in
        siblings children);
    List.iter go children
  in
  let root = assign_ids t in
  add "root" [ iid root ];
  go root;
  List.fold_left
    (fun acc (pred, args) ->
      Instance.add_fact pred (Tuple.of_list args) acc)
    Instance.empty !facts

let is_monadic p =
  let schema = Datalog.Ast.infer_schema p in
  List.for_all
    (fun q ->
      match Relational.Schema.find q schema with
      | Some r -> r.Relational.Schema.arity = 1
      | None -> true)
    (Datalog.Ast.idb p)

let select p t pred =
  let inst = to_instance t in
  let result =
    if Datalog.Stratify.is_stratifiable p then
      (Datalog.Stratified.eval p inst).Datalog.Stratified.instance
    else (Datalog.Inflationary.eval p inst).Datalog.Inflationary.instance
  in
  let selected = Instance.find pred result in
  List.filter
    (fun (id, _) ->
      Relation.mem (Tuple.of_list [ Value.Sym id ]) selected)
    (node_ids t)

let random ~seed ~depth ~width ~labels =
  let rng = Random.State.make [| seed |] in
  let label () = List.nth labels (Random.State.int rng (List.length labels)) in
  let rec go d =
    let n_children =
      if d >= depth then 0 else Random.State.int rng (width + 1)
    in
    { label = label (); children = List.init n_children (fun _ -> go (d + 1)) }
  in
  go 0
