lib/trees/tree.ml: Datalog Instance List Printf Random Relation Relational String Tuple Value
