lib/trees/tree.mli: Datalog Instance Relational
