open Relational

let intersect a b =
  (* per-relation intersection; relations absent on either side drop out *)
  Instance.fold
    (fun name ra acc ->
      let r = Relation.inter ra (Instance.find name b) in
      if Relation.is_empty r then acc else Instance.set name r acc)
    a Instance.empty

let poss ?max_states p inst =
  let js = Enumerate.terminals ?max_states p inst in
  List.fold_left Instance.union Instance.empty js

let cert ?max_states p inst =
  match Enumerate.terminals ?max_states p inst with
  | [] -> Instance.empty
  | j :: js -> List.fold_left intersect j js

let poss_answer ?max_states p inst pred =
  Instance.find pred (poss ?max_states p inst)

let cert_answer ?max_states p inst pred =
  Instance.find pred (cert ?max_states p inst)
