open Relational
module Ast = Datalog.Ast
module Matcher = Datalog.Matcher

type successors = {
  changed : Instance.t list;
  bottom_applicable : bool;
}

(* Apply one grounded head to the instance. The head is consistent
   (checked by the caller), so insertion/deletion order is irrelevant. *)
let apply_heads inst facts =
  List.fold_left
    (fun acc (pos, pred, tup) ->
      if pos then Instance.add_fact pred tup acc
      else Instance.remove_fact pred tup acc)
    inst facts

let head_consistent facts =
  not
    (List.exists
       (fun (pos, pred, tup) ->
         pos
         && List.exists
              (fun (pos', pred', tup') ->
                (not pos') && pred = pred' && Tuple.equal tup tup')
              facts)
       facts)

(* Enumerate all applicable firings as (bottom, grounded head facts). *)
let firings p inst =
  let dom = Datalog.Eval_util.program_dom p inst in
  let db = Matcher.Db.of_instance inst in
  List.concat_map
    (fun rule ->
      let plan = Matcher.prepare rule in
      let substs = Matcher.run ~dom plan db in
      List.filter_map
        (fun subst ->
          let bottom, facts = Matcher.instantiate_heads subst rule.Ast.head in
          if head_consistent facts then Some (bottom, facts) else None)
        substs)
    p

let successors p inst =
  let fs = firings p inst in
  let bottom_applicable = List.exists (fun (b, _) -> b) fs in
  let nexts =
    List.filter_map
      (fun (bottom, facts) ->
        if bottom then None
        else
          let next = apply_heads inst facts in
          if Instance.equal next inst then None else Some next)
      fs
  in
  let changed = List.sort_uniq Instance.compare nexts in
  { changed; bottom_applicable }

let is_terminal p inst =
  let { changed; bottom_applicable } = successors p inst in
  changed = [] && not bottom_applicable

type outcome =
  | Terminal of { instance : Instance.t; steps : int }
  | Abandoned of { steps : int }
  | Out_of_fuel of { instance : Instance.t; steps : int }

let run ~seed ?(max_steps = 100_000) p inst =
  let rng = Random.State.make [| seed |] in
  let rec go inst steps =
    if steps >= max_steps then Out_of_fuel { instance = inst; steps }
    else
      (* candidate firings: state-changing or ⊥-deriving *)
      let candidates =
        List.filter_map
          (fun (bottom, facts) ->
            if bottom then Some None
            else
              let next = apply_heads inst facts in
              if Instance.equal next inst then None else Some (Some next))
          (firings p inst)
      in
      match candidates with
      | [] -> Terminal { instance = inst; steps }
      | _ -> (
          match List.nth candidates (Random.State.int rng (List.length candidates)) with
          | None -> Abandoned { steps = steps + 1 }
          | Some next -> go next (steps + 1))
  in
  go inst 0

let run_until_terminal ~seed ?(attempts = 100) ?max_steps p inst =
  let rec try_ k =
    if k >= attempts then None
    else
      match run ~seed:(seed + (1_000_003 * k)) ?max_steps p inst with
      | Terminal { instance; _ } -> Some instance
      | Abandoned _ -> try_ (k + 1)
      | Out_of_fuel _ -> None
  in
  try_ 0
