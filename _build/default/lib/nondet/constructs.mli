(** Flavored entry points for the nondeterministic language family of §5.

    Each function validates its fragment's syntax and then delegates to the
    shared machinery ({!Nd_eval}, {!Enumerate}):

    - {b N-Datalog¬}: positive heads, body negation and (in)equality —
      strictly weaker than ndb-ptime (Example 5.4: it cannot compute
      [P − π_A(Q)]);
    - {b N-Datalog¬¬}: negative heads (deletions) — exactly ndb-pspace
      (Theorem 5.3);
    - {b N-Datalog¬⊥}: ⊥ abandons a computation — exactly ndb-ptime
      (Theorem 5.6);
    - {b N-Datalog¬∀}: universally quantified bodies — exactly ndb-ptime
      (Theorem 5.6). *)

open Relational

type flavor = Neg | Negneg | Bottom | Forall

(** [check flavor p] validates [p] against the flavor's syntax.
    @raise Datalog.Ast.Check_error on violations. *)
val check : flavor -> Datalog.Ast.program -> unit

(** [run flavor ~seed p inst] — checked random walk. *)
val run :
  flavor ->
  seed:int ->
  ?max_steps:int ->
  Datalog.Ast.program ->
  Instance.t ->
  Nd_eval.outcome

(** [effect flavor p inst] — checked exhaustive effect. *)
val effect :
  flavor ->
  ?max_states:int ->
  Datalog.Ast.program ->
  Instance.t ->
  Enumerate.stats
