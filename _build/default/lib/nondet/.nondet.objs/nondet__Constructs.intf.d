lib/nondet/constructs.mli: Datalog Enumerate Instance Nd_eval Relational
