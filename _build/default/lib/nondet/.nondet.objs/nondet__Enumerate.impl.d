lib/nondet/enumerate.ml: Datalog Instance List Nd_eval Queue Relational Set
