lib/nondet/posscert.ml: Enumerate Instance List Relation Relational
