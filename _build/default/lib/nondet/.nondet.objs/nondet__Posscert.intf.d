lib/nondet/posscert.mli: Datalog Instance Relation Relational
