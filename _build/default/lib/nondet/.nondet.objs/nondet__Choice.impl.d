lib/nondet/choice.ml: Array Datalog Hashtbl Instance List Printf Random Relation Relational Tuple Value
