lib/nondet/choice.mli: Datalog Instance Relation Relational
