lib/nondet/enumerate.mli: Datalog Instance Relational
