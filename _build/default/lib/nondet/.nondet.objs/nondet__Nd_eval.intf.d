lib/nondet/nd_eval.mli: Datalog Instance Relational
