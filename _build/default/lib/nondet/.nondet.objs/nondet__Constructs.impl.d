lib/nondet/constructs.ml: Datalog Enumerate Nd_eval
