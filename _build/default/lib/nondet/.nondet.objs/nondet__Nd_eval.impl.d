lib/nondet/nd_eval.ml: Datalog Instance List Random Relational Tuple
