(** Possibility and certainty semantics (Definition 5.10, §5.3).

    For a nondeterministic program [P] and input [I]:

    {v poss(I, P) = ∪ { J | (I, J) ∈ eff(P) }
   cert(I, P) = ∩ { J | (I, J) ∈ eff(P) } v}

    Both are deterministic queries. Theorem 5.11: under poss, N-Datalog¬∀
    and N-Datalog¬⊥ express db-np; under cert, db-co-np; for N-Datalog¬¬
    both collapse to db-pspace. Computed here by exhaustive enumeration of
    the effect (exponential — that is what db-np costs on a deterministic
    machine). *)

open Relational

(** [poss ?max_states p inst]. The union over an empty effect is the empty
    instance. @raise Enumerate.Too_many_states as {!Enumerate.effect}. *)
val poss : ?max_states:int -> Datalog.Ast.program -> Instance.t -> Instance.t

(** [cert ?max_states p inst]. The intersection over an empty effect is
    taken to be the empty instance (the paper leaves this degenerate case
    open; empty keeps [cert ⊆ poss]). *)
val cert : ?max_states:int -> Datalog.Ast.program -> Instance.t -> Instance.t

(** [poss_answer p inst pred] / [cert_answer p inst pred] project one
    relation out of the respective semantics. *)
val poss_answer :
  ?max_states:int -> Datalog.Ast.program -> Instance.t -> string -> Relation.t

val cert_answer :
  ?max_states:int -> Datalog.Ast.program -> Instance.t -> string -> Relation.t
