(** Exhaustive computation of the effect relation (Definition 5.2).

    Explores the state graph reachable from the input by single-rule
    firings and collects the terminal instances — the [J]s with
    [(I, J) ∈ eff(P)]. Exponential in general (that is the point of
    nondeterminism: experiment E5 counts [2^k] orientations of [k]
    two-cycles); a state budget guards runaway programs. Branches that
    derive ⊥ are abandoned, contributing nothing. *)

open Relational

type stats = {
  terminals : Instance.t list;  (** the effect's right column, sorted *)
  explored : int;  (** distinct states visited *)
  abandoned_branches : int;  (** states with an applicable ⊥ firing *)
}

exception Too_many_states of int

(** [effect ?max_states p inst] (default budget 100_000 states).
    @raise Too_many_states when the budget is exceeded. *)
val effect : ?max_states:int -> Datalog.Ast.program -> Instance.t -> stats

(** [terminals ?max_states p inst] is just the terminal instances. *)
val terminals :
  ?max_states:int -> Datalog.Ast.program -> Instance.t -> Instance.t list
