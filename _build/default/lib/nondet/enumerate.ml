open Relational
module Ast = Datalog.Ast

type stats = {
  terminals : Instance.t list;
  explored : int;
  abandoned_branches : int;
}

exception Too_many_states of int

module ISet = Set.Make (struct
  type t = Instance.t

  let compare = Instance.compare
end)

let effect ?(max_states = 100_000) p inst =
  let seen = ref ISet.empty in
  let terminals = ref ISet.empty in
  let abandoned = ref 0 in
  let queue = Queue.create () in
  Queue.add inst queue;
  seen := ISet.add inst !seen;
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    let { Nd_eval.changed; bottom_applicable } =
      Nd_eval.successors p state
    in
    if bottom_applicable then incr abandoned;
    if changed = [] && not bottom_applicable then
      terminals := ISet.add state !terminals
    else
      List.iter
        (fun next ->
          if not (ISet.mem next !seen) then (
            if ISet.cardinal !seen >= max_states then
              raise (Too_many_states max_states);
            seen := ISet.add next !seen;
            Queue.add next queue))
        changed
  done;
  {
    terminals = ISet.elements !terminals;
    explored = ISet.cardinal !seen;
    abandoned_branches = !abandoned;
  }

let terminals ?max_states p inst = (effect ?max_states p inst).terminals
