type flavor = Neg | Negneg | Bottom | Forall

let check flavor p =
  match flavor with
  | Neg -> Datalog.Ast.check_ndatalog_pos_heads p
  | Negneg -> Datalog.Ast.check_ndatalog p
  | Bottom -> Datalog.Ast.check_ndatalog_bottom p
  | Forall -> Datalog.Ast.check_ndatalog_forall p

let run flavor ~seed ?max_steps p inst =
  check flavor p;
  Nd_eval.run ~seed ?max_steps p inst

let effect flavor ?max_states p inst =
  check flavor p;
  Enumerate.effect ?max_states p inst
