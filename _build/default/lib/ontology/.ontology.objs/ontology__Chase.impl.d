lib/ontology/chase.ml: Datalog Format Hashtbl Instance List Printf Relation Relational Tuple Value
