lib/ontology/chase.mli: Datalog Instance Relation Relational
