open Relational
module Ast = Datalog.Ast

type mode = Monotone | Stamped

exception Unsupported of string

(* Polarity walk: an occurrence of [rel] is blocked if the path from the
   root passes a negation, a ∀ (compiled as ¬∃¬), or the antecedent of an
   implication. *)
let analyse rel (q : Wast.query) =
  let blocked = ref false and unblocked = ref false in
  let rec go under f =
    match f with
    | Fo.True | Fo.False | Fo.Eq _ -> ()
    | Fo.Atom (r, _) ->
        if r = rel then if under then blocked := true else unblocked := true
    | Fo.Not g | Fo.Forall (_, g) -> go true g
    | Fo.Implies (g, h) ->
        go true g;
        go under h
    | Fo.And (g, h) | Fo.Or (g, h) ->
        go under g;
        go under h
    | Fo.Exists (_, g) -> go under g
  in
  go false q.Wast.formula;
  match (!unblocked, !blocked) with
  | true, true ->
      raise
        (Unsupported
           (Printf.sprintf
              "relation %s occurs both under and outside negation in the \
               loop body; the general Theorem 4.2 construction is out of \
               scope"
              rel))
  | true, false -> Monotone
  | _ -> Stamped

(* ------------------------------------------------------------------ *)

type buf = { prefix : string; mutable counter : int; mutable rules : Ast.rule list }

let fresh buf what =
  buf.counter <- buf.counter + 1;
  Printf.sprintf "%s_%s%d" buf.prefix what buf.counter

let emit buf r = buf.rules <- r :: buf.rules

let v = Ast.var
let vs xs = List.map v xs

(* Stamp variable names (appended columns on R-dependent predicates). *)
let stamp_vars arity = List.init arity (fun i -> Printf.sprintf "TSTAMP%d" i)

type env = {
  buf : buf;
  adom : string;
  tick : string;  (* tick predicate prefix, 0-ary chain *)
  delay : string;  (* delay predicate prefix, stamped chain *)
  stamp : (string * int) option;  (* (rel, arity) when stamping *)
  mutable max_tick : int;
  mutable max_delay : int;
}

let tick_guard env level =
  if level >= 1 then (
    env.max_tick <- max env.max_tick level;
    [ Ast.BPos (Ast.atom (Printf.sprintf "%s%d" env.tick level) []) ])
  else []

let delay_guard env level tvars =
  if level >= 1 then (
    env.max_delay <- max env.max_delay level;
    [ Ast.BPos (Ast.atom (Printf.sprintf "%s%d" env.delay level) (vs tvars)) ])
  else
    match env.stamp with
    | Some (rel, _) -> [ Ast.BPos (Ast.atom rel (vs tvars)) ]
    | None -> assert false

let adom_atom env x = Ast.BPos (Ast.atom env.adom [ v x ])

(* Reference a compiled subformula from a rule body, appending the stamp
   columns when the child is R-dependent. *)
let child_atom (pred, cvars, _lvl, rdep) tvars =
  Ast.BPos (Ast.atom pred (vs (cvars @ if rdep then tvars else [])))

(* Compile one node. Returns (pred, vars, level, rdep). In a stamped
   environment, R-dependent predicates carry the stamp columns and their
   rules are guarded by the delay chain; static predicates are guarded by
   the tick chain. In a monotone environment everything uses ticks. *)
let rec node env (f : Fo.formula) : string * string list * int * bool =
  let rel_name = match env.stamp with Some (r, _) -> r | None -> "" in
  let tvars =
    match env.stamp with Some (_, a) -> stamp_vars a | None -> []
  in
  let guard ~level ~rdep =
    if rdep && env.stamp <> None then delay_guard env (level - 1) tvars
    else tick_guard env (level - 1)
  in
  match f with
  | Fo.True ->
      let p = fresh env.buf "true" in
      emit env.buf (Ast.fact (Ast.atom p []));
      (p, [], 1, false)
  | Fo.False ->
      let p = fresh env.buf "false" in
      (p, [], 1, false)
  | Fo.Eq (a, b) -> (
      let p = fresh env.buf "eq" in
      match (a, b) with
      | Fo.Var x, Fo.Var y when x = y ->
          emit env.buf (Ast.rule (Ast.atom p [ v x ]) [ adom_atom env x ]);
          (p, [ x ], 1, false)
      | Fo.Var x, Fo.Var y ->
          emit env.buf
            (Ast.rule (Ast.atom p [ v x; v x ]) [ adom_atom env x ]);
          (p, [ x; y ], 1, false)
      | Fo.Var x, Fo.Cst c | Fo.Cst c, Fo.Var x ->
          emit env.buf (Ast.fact (Ast.atom p [ Ast.cst c ]));
          (p, [ x ], 1, false)
      | Fo.Cst c, Fo.Cst d ->
          if Value.equal c d then emit env.buf (Ast.fact (Ast.atom p []));
          (p, [], 1, false))
  | Fo.Atom (r, terms) ->
      let p = fresh env.buf "atom" in
      let vars = Fo.free_vars f in
      let rdep = env.stamp <> None && r = rel_name in
      let body =
        Ast.BPos
          (Ast.atom r
             (List.map
                (function Fo.Var x -> v x | Fo.Cst c -> Ast.cst c)
                terms))
        ::
        (if rdep then [ Ast.BPos (Ast.atom rel_name (vs tvars)) ] else [])
      in
      emit env.buf
        (Ast.rule (Ast.atom p (vs (vars @ if rdep then tvars else []))) body);
      (p, vars, 1, rdep)
  | Fo.Not g ->
      let ((_, gvars, glvl, grdep) as cg) = node env g in
      let p = fresh env.buf "not" in
      let level = glvl + 1 in
      let rdep = grdep in
      emit env.buf
        (Ast.rule
           (Ast.atom p (vs (gvars @ if rdep then tvars else [])))
           (guard ~level ~rdep
           @ List.map (adom_atom env) gvars
           @ [
               (match child_atom cg tvars with
               | Ast.BPos a -> Ast.BNeg a
               | _ -> assert false);
             ]));
      (p, gvars, level, rdep)
  | Fo.And (g, h) ->
      let ((_, _, glvl, grdep) as cg) = node env g in
      let ((_, _, hlvl, hrdep) as ch) = node env h in
      let p = fresh env.buf "and" in
      let vars = Fo.free_vars f in
      let level = 1 + max glvl hlvl in
      let rdep = grdep || hrdep in
      emit env.buf
        (Ast.rule
           (Ast.atom p (vs (vars @ if rdep then tvars else [])))
           (guard ~level ~rdep @ [ child_atom cg tvars; child_atom ch tvars ]));
      (p, vars, level, rdep)
  | Fo.Or (g, h) ->
      let ((_, gvars, glvl, grdep) as cg) = node env g in
      let ((_, hvars, hlvl, hrdep) as ch) = node env h in
      let p = fresh env.buf "or" in
      let vars = Fo.free_vars f in
      let level = 1 + max glvl hlvl in
      let rdep = grdep || hrdep in
      let pad sub_vars sub =
        let missing =
          List.filter (fun x -> not (List.mem x sub_vars)) vars
        in
        Ast.rule
          (Ast.atom p (vs (vars @ if rdep then tvars else [])))
          (guard ~level ~rdep
          @ [ child_atom sub tvars ]
          @ List.map (adom_atom env) missing
          @
          (* a static branch of an R-dependent Or must still bind the
             stamp columns *)
          if rdep && not (let _, _, _, d = sub in d) then
            delay_guard env 0 tvars
          else [])
      in
      emit env.buf (pad gvars cg);
      emit env.buf (pad hvars ch);
      (p, vars, level, rdep)
  | Fo.Implies (g, h) -> node env (Fo.Or (Fo.Not g, h))
  | Fo.Exists (xs, g) ->
      let ((_, gvars, glvl, grdep) as cg) = node env g in
      let p = fresh env.buf "ex" in
      let vars = List.filter (fun x -> not (List.mem x xs)) gvars in
      let level = glvl + 1 in
      let rdep = grdep in
      emit env.buf
        (Ast.rule
           (Ast.atom p (vs (vars @ if rdep then tvars else [])))
           (guard ~level ~rdep @ [ child_atom cg tvars ]));
      (p, vars, level, rdep)
  | Fo.Forall (xs, g) -> node env (Fo.Not (Fo.Exists (xs, Fo.Not g)))

(* Emit the adom, tick and delay support rules. *)
let emit_support env ~sources ~consts =
  List.iter
    (fun (r, arity) ->
      List.iter
        (fun i ->
          let args =
            List.init arity (fun j ->
                if i = j then v "X" else v (Printf.sprintf "U%d" j))
          in
          emit env.buf
            (Ast.rule (Ast.atom env.adom [ v "X" ]) [ Ast.BPos (Ast.atom r args) ]))
        (List.init arity Fun.id))
    sources;
  List.iter
    (fun c -> emit env.buf (Ast.fact (Ast.atom env.adom [ Ast.cst c ])))
    consts;
  if env.max_tick >= 1 then (
    emit env.buf (Ast.fact (Ast.atom (env.tick ^ "1") []));
    for k = 2 to env.max_tick do
      emit env.buf
        (Ast.rule
           (Ast.atom (Printf.sprintf "%s%d" env.tick k) [])
           [ Ast.BPos (Ast.atom (Printf.sprintf "%s%d" env.tick (k - 1)) []) ])
    done);
  match env.stamp with
  | Some (rel, arity) when env.max_delay >= 1 ->
      let tv = stamp_vars arity in
      emit env.buf
        (Ast.rule
           (Ast.atom (env.delay ^ "1") (vs tv))
           [ Ast.BPos (Ast.atom rel (vs tv)) ]);
      for k = 2 to env.max_delay do
        emit env.buf
          (Ast.rule
             (Ast.atom (Printf.sprintf "%s%d" env.delay k) (vs tv))
             [
               Ast.BPos (Ast.atom (Printf.sprintf "%s%d" env.delay (k - 1)) (vs tv));
             ])
      done
  | _ -> ()

type compiled = { program : Ast.program; mode : mode; rel : string }

let compile_pass ~prefix ~sources ~rel ~arity ~stamped (q : Wast.query) =
  let buf = { prefix; counter = 0; rules = [] } in
  let env =
    {
      buf;
      adom = prefix ^ "_adom";
      tick = prefix ^ "_tick";
      delay = prefix ^ "_delay";
      stamp = (if stamped then Some (rel, arity) else None);
      max_tick = 0;
      max_delay = 0;
    }
  in
  let ((_, top_vars, top_lvl, top_rdep) as top) = node env q.Wast.formula in
  let tvars = if stamped then stamp_vars arity else [] in
  (* the update rule: R(vars) <- guard, top(...), adom pads *)
  let missing =
    List.filter (fun x -> not (List.mem x top_vars)) q.Wast.vars
  in
  emit buf
    (Ast.rule
       (Ast.atom rel (vs q.Wast.vars))
       ((if top_rdep && stamped then delay_guard env top_lvl tvars
         else tick_guard env top_lvl)
       @ [ child_atom top tvars ]
       @ List.map (adom_atom env) missing));
  emit_support env ~sources:((rel, arity) :: sources)
    ~consts:(Fo.constants q.Wast.formula);
  List.rev buf.rules

let fixpoint_loop ~sources ~rel (q : Wast.query) =
  Wast.check [ Wast.Cumulate (rel, q) ];
  let arity = List.length q.Wast.vars in
  let mode = analyse rel q in
  let program =
    match mode with
    | Monotone -> compile_pass ~prefix:"fx" ~sources ~rel ~arity ~stamped:false q
    | Stamped ->
        (* iteration 1 (unstamped) + iterations 2.. (stamped by R tuples) *)
        compile_pass ~prefix:"fxu" ~sources ~rel ~arity ~stamped:false q
        @ compile_pass ~prefix:"fxs" ~sources ~rel ~arity ~stamped:true q
  in
  { program; mode; rel }

let run_loop ~sources ~rel q inst =
  let { program; _ } = fixpoint_loop ~sources ~rel q in
  Datalog.Inflationary.answer program inst rel
