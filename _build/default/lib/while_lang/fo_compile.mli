(** Compilation of FO (relational calculus) queries into nonrecursive
    stratified Datalog¬ — the classic equivalence FO ⊆ nonrecursive
    stratified Datalog¬ used throughout §2–4 of the paper.

    Each subformula becomes a fresh predicate; quantifier-free connectives
    become joins/unions, negation becomes a guarded negative literal, and
    active-domain quantification is realized by an explicit [adom]
    predicate derived from the given source relations (plus the formula's
    constants). The result evaluates under {!Datalog.Stratified} to exactly
    {!Relational.Fo.eval}'s answer (property-tested). *)

open Relational

type compiled = {
  rules : Datalog.Ast.program;
      (** nonrecursive, stratifiable; fresh predicates are prefixed *)
  pred : string;  (** answer predicate, columns = requested [vars] *)
  adom_pred : string;  (** the generated active-domain predicate *)
  depth : int;  (** height of the subformula DAG (tick-chain length) *)
}

(** [compile ~sources ?prefix f vars] compiles [f] with output columns
    [vars] (must cover [f]'s free variables; extra columns range over the
    active domain). [sources] lists the (relation, arity) pairs whose
    values constitute the active domain — normally the full edb schema.
    [prefix] (default ["q"]) namespaces the generated predicates.
    @raise Invalid_argument if [vars] misses a free variable. *)
val compile :
  sources:(string * int) list ->
  ?prefix:string ->
  Fo.formula ->
  string list ->
  compiled

(** [answer ~sources f vars inst] — compile, run stratified, return the
    answer relation. *)
val answer :
  sources:(string * int) list ->
  Fo.formula ->
  string list ->
  Instance.t ->
  Relation.t
