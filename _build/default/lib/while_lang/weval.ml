open Relational

type outcome =
  | Completed of { instance : Instance.t; iterations : int }
  | Out_of_fuel of { instance : Instance.t; iterations : int }

exception Fuel

let run ?(fuel = 100_000) p inst =
  Wast.check p;
  let iterations = ref 0 in
  let tick () =
    incr iterations;
    if !iterations > fuel then raise Fuel
  in
  let eval_query inst { Wast.formula; vars } =
    Fo.eval inst formula vars
  in
  let rec exec_stmt inst = function
    | Wast.Assign (r, q) -> Instance.set r (eval_query inst q) inst
    | Wast.Cumulate (r, q) ->
        Instance.set r (Relation.union (Instance.find r inst) (eval_query inst q)) inst
    | Wast.While_change body ->
        let rec loop inst =
          tick ();
          let next = exec_body inst body in
          if Instance.equal next inst then inst else loop next
        in
        loop inst
    | Wast.While (cond, body) ->
        let rec loop inst =
          if Fo.sentence inst cond then (
            tick ();
            loop (exec_body inst body))
          else inst
        in
        loop inst
  and exec_body inst body = List.fold_left exec_stmt inst body in
  match exec_body inst p with
  | result -> Completed { instance = result; iterations = !iterations }
  | exception Fuel -> Out_of_fuel { instance = inst; iterations = !iterations }

let eval ?fuel p inst =
  match run ?fuel p inst with
  | Completed { instance; _ } -> instance
  | Out_of_fuel { iterations; _ } ->
      failwith
        (Printf.sprintf "While program did not terminate within %d iterations"
           iterations)

let answer ?fuel p inst pred = Instance.find pred (eval ?fuel p inst)
