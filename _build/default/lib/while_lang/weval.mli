(** Evaluator for the while / fixpoint languages.

    FO queries are evaluated with active-domain semantics over the current
    instance (extended with the formula's constants). [While] loops may
    diverge — evaluation takes fuel, counted in executed loop iterations. *)

open Relational

type outcome =
  | Completed of { instance : Instance.t; iterations : int }
  | Out_of_fuel of { instance : Instance.t; iterations : int }

(** [run ?fuel p inst] (default fuel 100_000 loop iterations).
    @raise Invalid_argument via {!Wast.check} on ill-formed programs. *)
val run : ?fuel:int -> Wast.program -> Instance.t -> outcome

(** [eval p inst] expects completion. @raise Failure on fuel
    exhaustion. *)
val eval : ?fuel:int -> Wast.program -> Instance.t -> Instance.t

(** [answer p inst pred] projects one relation from the final instance. *)
val answer : ?fuel:int -> Wast.program -> Instance.t -> string -> Relation.t
