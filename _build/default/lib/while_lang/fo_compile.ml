open Relational
module Ast = Datalog.Ast

type compiled = {
  rules : Datalog.Ast.program;
  pred : string;
  adom_pred : string;
  depth : int;
}

(* A compilation buffer: fresh names + emitted rules. *)
type buf = {
  prefix : string;
  mutable counter : int;
  mutable rules : Ast.rule list;
}

let fresh buf what =
  buf.counter <- buf.counter + 1;
  Printf.sprintf "%s_%s%d" buf.prefix what buf.counter

let emit buf r = buf.rules <- r :: buf.rules

let v x = Ast.var x
let adom_atom adom x = Ast.BPos (Ast.atom adom [ v x ])

(* Compile one subformula; returns (pred, vars, level) where [vars] is the
   canonical free-variable list (first-occurrence order) and pred(vars)
   holds iff the subformula does, over the active domain. *)
let rec node buf adom (f : Fo.formula) : string * string list * int =
  match f with
  | Fo.True ->
      let p = fresh buf "true" in
      emit buf (Ast.fact (Ast.atom p []));
      (p, [], 1)
  | Fo.False ->
      (* a predicate with no defining rules is empty in every model *)
      let p = fresh buf "false" in
      (p, [], 1)
  | Fo.Atom (r, terms) ->
      let p = fresh buf "atom" in
      let vars = Fo.free_vars f in
      emit buf
        (Ast.rule
           (Ast.atom p (List.map v vars))
           [
             Ast.BPos
               (Ast.atom r
                  (List.map
                     (function
                       | Fo.Var x -> v x
                       | Fo.Cst c -> Ast.cst c)
                     terms));
           ]);
      (p, vars, 1)
  | Fo.Eq (a, b) -> (
      let p = fresh buf "eq" in
      match (a, b) with
      | Fo.Var x, Fo.Var y when x = y ->
          emit buf (Ast.rule (Ast.atom p [ v x ]) [ adom_atom adom x ]);
          (p, [ x ], 2)
      | Fo.Var x, Fo.Var y ->
          (* p(x, y) with x = y: bind both columns to one variable *)
          emit buf
            (Ast.rule (Ast.atom p [ v x; v x ]) [ adom_atom adom x ]);
          (p, [ x; y ], 2)
      | Fo.Var x, Fo.Cst c | Fo.Cst c, Fo.Var x ->
          (* x = c: a one-column relation holding exactly c *)
          emit buf (Ast.fact (Ast.atom p [ Ast.cst c ]));
          (p, [ x ], 1)
      | Fo.Cst c, Fo.Cst d ->
          if Value.equal c d then emit buf (Ast.fact (Ast.atom p []));
          (p, [], 1))
  | Fo.Not g ->
      let pg, vars, lvl = node buf adom g in
      let p = fresh buf "not" in
      emit buf
        (Ast.rule
           (Ast.atom p (List.map v vars))
           (List.map (adom_atom adom) vars
           @ [ Ast.BNeg (Ast.atom pg (List.map v vars)) ]));
      (p, vars, lvl + 1)
  | Fo.And (g, h) ->
      let pg, vg, lg = node buf adom g in
      let ph, vh, lh = node buf adom h in
      let p = fresh buf "and" in
      let vars = Fo.free_vars f in
      emit buf
        (Ast.rule
           (Ast.atom p (List.map v vars))
           [
             Ast.BPos (Ast.atom pg (List.map v vg));
             Ast.BPos (Ast.atom ph (List.map v vh));
           ]);
      (p, vars, 1 + max lg lh)
  | Fo.Or (g, h) ->
      let pg, vg, lg = node buf adom g in
      let ph, vh, lh = node buf adom h in
      let p = fresh buf "or" in
      let vars = Fo.free_vars f in
      let pad sub_vars sub_pred =
        let missing = List.filter (fun x -> not (List.mem x sub_vars)) vars in
        Ast.rule
          (Ast.atom p (List.map v vars))
          (Ast.BPos (Ast.atom sub_pred (List.map v sub_vars))
           :: List.map (adom_atom adom) missing)
      in
      emit buf (pad vg pg);
      emit buf (pad vh ph);
      (p, vars, 1 + max lg lh)
  | Fo.Implies (g, h) -> node buf adom (Fo.Or (Fo.Not g, h))
  | Fo.Exists (xs, g) ->
      let pg, vg, lg = node buf adom g in
      let p = fresh buf "ex" in
      let vars = List.filter (fun x -> not (List.mem x xs)) vg in
      emit buf
        (Ast.rule
           (Ast.atom p (List.map v vars))
           [ Ast.BPos (Ast.atom pg (List.map v vg)) ]);
      (p, vars, lg + 1)
  | Fo.Forall (xs, g) -> node buf adom (Fo.Not (Fo.Exists (xs, Fo.Not g)))

let compile ~sources ?(prefix = "q") f vars =
  List.iter
    (fun x ->
      if not (List.mem x vars) then
        invalid_arg
          (Printf.sprintf "Fo_compile: free variable %s not in output list" x))
    (Fo.free_vars f);
  let buf = { prefix; counter = 0; rules = [] } in
  let adom = prefix ^ "_adom" in
  (* adom rules from every source column *)
  List.iter
    (fun (r, arity) ->
      List.iteri
        (fun i () ->
          let args =
            List.init arity (fun j ->
                if i = j then v "X" else v (Printf.sprintf "U%d" j))
          in
          emit buf (Ast.rule (Ast.atom adom [ v "X" ]) [ Ast.BPos (Ast.atom r args) ]))
        (List.init arity (fun _ -> ())))
    sources;
  (* the formula's constants are part of the domain *)
  List.iter
    (fun c -> emit buf (Ast.fact (Ast.atom adom [ Ast.cst c ])))
    (Fo.constants f);
  let top, top_vars, depth = node buf adom f in
  let ans = prefix ^ "_ans" in
  let missing = List.filter (fun x -> not (List.mem x top_vars)) vars in
  emit buf
    (Ast.rule
       (Ast.atom ans (List.map v vars))
       (Ast.BPos (Ast.atom top (List.map v top_vars))
        :: List.map (adom_atom adom) missing));
  { rules = List.rev buf.rules; pred = ans; adom_pred = adom; depth = depth + 1 }

let answer ~sources f vars inst =
  let { rules; pred; _ } = compile ~sources f vars in
  Datalog.Stratified.answer rules inst pred
