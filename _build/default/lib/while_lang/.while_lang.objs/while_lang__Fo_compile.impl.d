lib/while_lang/fo_compile.ml: Datalog Fo List Printf Relational Value
