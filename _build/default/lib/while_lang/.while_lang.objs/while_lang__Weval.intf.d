lib/while_lang/weval.mli: Instance Relation Relational Wast
