lib/while_lang/compile.ml: Datalog Fo Fun List Printf Relational Value Wast
