lib/while_lang/wast.ml: Fo Format List Printf Relational String
