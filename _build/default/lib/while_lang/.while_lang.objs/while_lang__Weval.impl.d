lib/while_lang/weval.ml: Fo Instance List Printf Relation Relational Wast
