lib/while_lang/compile.mli: Datalog Instance Relation Relational Wast
