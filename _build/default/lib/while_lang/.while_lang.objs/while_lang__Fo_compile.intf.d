lib/while_lang/fo_compile.mli: Datalog Fo Instance Relation Relational
