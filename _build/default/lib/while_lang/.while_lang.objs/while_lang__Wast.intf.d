lib/while_lang/wast.mli: Fo Format Relational
