(** Compiling fixpoint loops into inflationary Datalog¬ — the executable
    content of the Theorem 4.2 simulation, in the two forms the paper
    itself exhibits (Examples 4.3 and 4.4).

    Given a loop [while change do R += φ], the compiled Datalog¬ program
    run under {e inflationary} semantics computes the same final [R]. Two
    constructions are implemented, selected by a polarity analysis of [R]
    in [φ]:

    - {b Monotone} ([R] never below a negation, a ∀, or the left side of
      an implication): the subformula predicates are re-derived as [R]
      grows; negations over [R]-free parts are sequenced with a chain of
      0-ary {e tick} predicates (the delay technique of Example 4.3).
    - {b Stamped} (every occurrence of [R] is {e blocked}, i.e. lies below
      at least one negation/∀/implication-antecedent): each iteration's
      scratch predicates are distinguished by {e timestamps} — the tuples
      of [R] itself, exactly as Example 4.4 stamps iterations with the
      newly derived values of [good]. Old-stamp derivations can only grow
      below a blocking negation and never propagate past it, so the update
      rule only ever fires on values the loop itself would produce.

    Programs where [R] has both blocked and unblocked occurrences are
    rejected: handling them requires the fully general machinery of the
    Theorem 4.2 proof (freezing completed iterations), which the paper
    only sketches. This restriction still covers both worked examples and
    every loop whose body is monotone or antitone in [R]. *)

open Relational

type mode = Monotone | Stamped

exception Unsupported of string

(** [analyse rel q] determines the compilation mode.
    @raise Unsupported when [rel] has both blocked and unblocked
    occurrences in [q]'s formula. *)
val analyse : string -> Wast.query -> mode

type compiled = {
  program : Datalog.Ast.program;  (** inflationary Datalog¬ *)
  mode : mode;
  rel : string;  (** the loop relation, readable from the result *)
}

(** [fixpoint_loop ~sources ~rel q] compiles [while change do rel += q].
    [sources] is the edb schema (for the active-domain predicate); [rel]
    with arity [List.length q.vars] is added automatically.
    @raise Unsupported as {!analyse}. *)
val fixpoint_loop :
  sources:(string * int) list -> rel:string -> Wast.query -> compiled

(** [run_loop ~sources ~rel q inst] compiles and evaluates under
    {!Datalog.Inflationary}, returning the final [rel] relation —
    directly comparable with
    [Weval.answer [While_change [Cumulate (rel, q)]] inst rel]. *)
val run_loop :
  sources:(string * int) list ->
  rel:string ->
  Wast.query ->
  Instance.t ->
  Relation.t
