(** Abstract syntax of the {e while} and {e fixpoint} languages (§2).

    While is an imperative language over relation variables with FO
    assignments and a looping construct. Fixpoint is the same language
    with {e cumulative} assignment only ([R += φ]), which forces
    termination in polynomial time; while programs may diverge and run in
    polynomial space. On ordered databases, fixpoint = db-ptime and
    while = db-pspace (§2, Theorems 4.7/4.8 context). *)

open Relational

(** An FO query: formula plus output variable order (the assigned
    relation's columns). *)
type query = { formula : Fo.formula; vars : string list }

type stmt =
  | Assign of string * query  (** [R := φ] — destructive *)
  | Cumulate of string * query  (** [R += φ] — cumulative *)
  | While_change of stmt list
      (** [while change do ... od]: iterate while some relation changes *)
  | While of Fo.formula * stmt list
      (** [while φ do ... od]: iterate while the sentence [φ] holds *)

type program = stmt list

(** [is_fixpoint p]: only cumulative assignments occur — the fixpoint
    sublanguage, guaranteed to terminate. *)
val is_fixpoint : program -> bool

(** [assigned_relations p] lists the relation variables written by [p]. *)
val assigned_relations : program -> string list

(** [check p] validates that every query's [vars] covers its formula's
    free variables and that [While] conditions are sentences.
    @raise Invalid_argument otherwise. *)
val check : program -> unit

val pp : Format.formatter -> program -> unit
