type direction = Left | Right | Stay

type transition = { write : string; move : direction; next : string }

type t = {
  name : string;
  blank : string;
  start : string;
  accept : string;
  reject : string;
  delta : (string * string) -> transition option;
  states : string list;
  symbols : string list;
}

type config = { state : string; tape : (int * string) list; head : int }

let init m input =
  let tape =
    List.mapi (fun i s -> (i, s)) input
    |> List.filter (fun (_, s) -> s <> m.blank)
  in
  { state = m.start; tape; head = 0 }

let cell_read tape blank pos =
  match List.assoc_opt pos tape with Some s -> s | None -> blank

let cell_write tape blank pos sym =
  let tape = List.remove_assoc pos tape in
  if sym = blank then tape
  else List.sort (fun (a, _) (b, _) -> Int.compare a b) ((pos, sym) :: tape)

let read m cfg = cell_read cfg.tape m.blank cfg.head

let step m cfg =
  if cfg.state = m.accept || cfg.state = m.reject then None
  else
    match m.delta (cfg.state, read m cfg) with
    | None -> None
    | Some { write; move; next } ->
        let tape = cell_write cfg.tape m.blank cfg.head write in
        let head =
          match move with
          | Left -> cfg.head - 1
          | Right -> cfg.head + 1
          | Stay -> cfg.head
        in
        Some { state = next; tape; head }

type run_result =
  | Accepted of { steps : int; final : config }
  | Rejected of { steps : int; final : config }
  | Ran_out_of_fuel of { steps : int; final : config }

let run ?(fuel = 100_000) m input =
  let rec go cfg steps =
    if cfg.state = m.accept then Accepted { steps; final = cfg }
    else if cfg.state = m.reject then Rejected { steps; final = cfg }
    else if steps >= fuel then Ran_out_of_fuel { steps; final = cfg }
    else
      match step m cfg with
      | Some cfg' -> go cfg' (steps + 1)
      | None -> Rejected { steps; final = cfg }
  in
  go (init m input) 0

let tape_to_list cfg ~lo ~hi blank =
  List.init (hi - lo + 1) (fun i -> cell_read cfg.tape blank (lo + i))

(* --- sample machines --------------------------------------------------- *)

let table name ~blank ~start ~accept ~reject ~states ~symbols rows =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (st, sy, write, move, next) ->
      Hashtbl.replace tbl (st, sy) { write; move; next })
    rows;
  {
    name;
    blank;
    start;
    accept;
    reject;
    delta = Hashtbl.find_opt tbl;
    states;
    symbols;
  }

(* Walk right to the first blank, write a 1, accept. *)
let unary_increment =
  table "unary-increment" ~blank:"_" ~start:"scan" ~accept:"acc" ~reject:"rej"
    ~states:[ "scan"; "acc"; "rej" ] ~symbols:[ "1"; "_" ]
    [
      ("scan", "1", "1", Right, "scan");
      ("scan", "_", "1", Stay, "acc");
    ]

(* Sweep right flipping a parity state; accept iff even number of 1s. *)
let parity =
  table "parity" ~blank:"_" ~start:"even" ~accept:"acc" ~reject:"rej"
    ~states:[ "even"; "odd"; "acc"; "rej" ] ~symbols:[ "1"; "0"; "_" ]
    [
      ("even", "1", "1", Right, "odd");
      ("even", "0", "0", Right, "even");
      ("even", "_", "_", Stay, "acc");
      ("odd", "1", "1", Right, "even");
      ("odd", "0", "0", Right, "odd");
      ("odd", "_", "_", Stay, "rej");
    ]

(* Move to the rightmost digit, then propagate the carry leftwards. *)
let binary_increment =
  table "binary-increment" ~blank:"_" ~start:"right" ~accept:"acc"
    ~reject:"rej"
    ~states:[ "right"; "carry"; "acc"; "rej" ]
    ~symbols:[ "0"; "1"; "_" ]
    [
      ("right", "0", "0", Right, "right");
      ("right", "1", "1", Right, "right");
      ("right", "_", "_", Left, "carry");
      ("carry", "1", "0", Left, "carry");
      ("carry", "0", "1", Stay, "acc");
      ("carry", "_", "1", Stay, "acc");
    ]

(* Classic quadratic palindrome checker over {0,1}: cross off matching
   outermost symbols. *)
let palindrome =
  table "palindrome" ~blank:"_" ~start:"pick" ~accept:"acc" ~reject:"rej"
    ~states:
      [ "pick"; "have0"; "have1"; "match0"; "match1"; "back"; "acc"; "rej" ]
    ~symbols:[ "0"; "1"; "X"; "_" ]
    [
      (* pick the leftmost remaining symbol *)
      ("pick", "X", "X", Right, "pick");
      ("pick", "0", "X", Right, "have0");
      ("pick", "1", "X", Right, "have1");
      ("pick", "_", "_", Stay, "acc");
      (* run right to the end *)
      ("have0", "0", "0", Right, "have0");
      ("have0", "1", "1", Right, "have0");
      ("have0", "_", "_", Left, "match0");
      ("have0", "X", "X", Right, "have0");
      ("have1", "0", "0", Right, "have1");
      ("have1", "1", "1", Right, "have1");
      ("have1", "_", "_", Left, "match1");
      ("have1", "X", "X", Right, "have1");
      (* the rightmost non-X symbol must match *)
      ("match0", "X", "X", Left, "match0");
      ("match0", "0", "X", Left, "back");
      ("match0", "1", "1", Stay, "rej");
      ("match0", "_", "_", Stay, "acc");
      ("match1", "X", "X", Left, "match1");
      ("match1", "1", "X", Left, "back");
      ("match1", "0", "0", Stay, "rej");
      ("match1", "_", "_", Stay, "acc");
      (* return to the left end *)
      ("back", "0", "0", Left, "back");
      ("back", "1", "1", Left, "back");
      ("back", "X", "X", Left, "back");
      ("back", "_", "_", Right, "pick");
    ]
