lib/turing/tm_compile.ml: Datalog Instance List Printf Relation Relational String Tm Tuple Value
