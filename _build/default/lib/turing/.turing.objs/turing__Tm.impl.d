lib/turing/tm.ml: Hashtbl Int List
