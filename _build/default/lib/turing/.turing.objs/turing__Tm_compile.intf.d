lib/turing/tm_compile.mli: Datalog Relational Tm
