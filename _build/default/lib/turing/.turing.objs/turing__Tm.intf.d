lib/turing/tm.mli:
