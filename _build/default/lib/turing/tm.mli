(** Deterministic single-tape Turing machines.

    The substrate for the paper's completeness results: Theorem 4.6's proof
    simulates a Turing machine inside Datalog¬new, with invented values
    standing in for tape cells. {!Tm_compile} performs that construction
    executably; this module provides the reference machine semantics the
    compilation is tested against.

    Conventions: a two-way-infinite tape realized lazily (cells default to
    [blank]); the head starts on cell 0, which holds the first input
    symbol. Machines halt by entering [accept] or [reject]. *)

type direction = Left | Right | Stay

type transition = {
  write : string;  (** symbol to write *)
  move : direction;
  next : string;  (** next state *)
}

type t = {
  name : string;
  blank : string;  (** the blank tape symbol *)
  start : string;  (** initial state *)
  accept : string;  (** accepting halt state *)
  reject : string;  (** rejecting halt state *)
  delta : (string * string) -> transition option;
      (** [(state, symbol)] to transition; [None] = implicit reject *)
  states : string list;  (** all states, for the compiler *)
  symbols : string list;  (** tape alphabet including [blank] *)
}

type config = {
  state : string;
  tape : (int * string) list;  (** non-blank cells, sorted by position *)
  head : int;
}

(** [init m input] is the initial configuration with [input] written on
    cells [0..n-1]. *)
val init : t -> string list -> config

(** [read m cfg] is the symbol under the head. *)
val read : t -> config -> string

(** [step m cfg] performs one transition. [None] if the machine is in a
    halt state or has no applicable transition (implicit reject). *)
val step : t -> config -> config option

type run_result =
  | Accepted of { steps : int; final : config }
  | Rejected of { steps : int; final : config }
  | Ran_out_of_fuel of { steps : int; final : config }

(** [run ?fuel m input] runs to halt or fuel exhaustion (default 100_000
    steps). *)
val run : ?fuel:int -> t -> string list -> run_result

(** [tape_to_list cfg ~lo ~hi blank] renders cells [lo..hi]. *)
val tape_to_list : config -> lo:int -> hi:int -> string -> string list

(** {1 Sample machines} *)

(** [unary_increment] appends a [1] to a unary string of [1]s: on input
    [1^n] it accepts with [1^(n+1)] on the tape. *)
val unary_increment : t

(** [parity] accepts iff the number of [1]s on the tape is even (a
    decision machine for the evenness query of §4.4, given an encoding). *)
val parity : t

(** [binary_increment] treats the tape as a binary numeral (most
    significant bit first) and adds one, accepting when done. *)
val binary_increment : t

(** [palindrome] accepts iff its [0]/[1] input is a palindrome — a
    quadratic-time machine useful for scaling benches. *)
val palindrome : t
