open Relational
module Ast = Datalog.Ast

let state_pred = "state"
let head_pred = "head"
let tape_pred = "tape"
let tsucc_pred = "tsucc"
let tstep_pred = "tstep"
let accepted_pred = "accepted"
let rejected_pred = "rejected"
let final_tape_pred = "final_tape"
let has_succ_pred = "has_succ"
let has_pred_pred = "has_pred"

(* constants *)
let qc q = Ast.cst (Value.Sym ("q:" ^ q))
let sc s = Ast.cst (Value.Sym ("s:" ^ s))
let pos_value i = Value.Sym (Printf.sprintf "p%d" i)
let t0 = Value.Sym "t0"

let v = Ast.var
let a = Ast.atom

let compile (m : Tm.t) : Ast.program =
  let rules = ref [] in
  let add r = rules := r :: !rules in
  (* bookkeeping rules *)
  add (Ast.rule (a has_succ_pred [ v "P" ]) [ Ast.BPos (a tsucc_pred [ v "P"; v "P2" ]) ]);
  add (Ast.rule (a has_pred_pred [ v "P" ]) [ Ast.BPos (a tsucc_pred [ v "P2"; v "P" ]) ]);
  add
    (Ast.rule (a accepted_pred [])
       [ Ast.BPos (a state_pred [ v "T"; qc m.Tm.accept ]) ]);
  add
    (Ast.rule (a rejected_pred [])
       [ Ast.BPos (a state_pred [ v "T"; qc m.Tm.reject ]) ]);
  add
    (Ast.rule
       (a final_tape_pred [ v "P"; v "S" ])
       [
         Ast.BPos (a state_pred [ v "T"; qc m.Tm.accept ]);
         Ast.BPos (a tape_pred [ v "T"; v "P"; v "S" ]);
       ]);
  (* one rule group per transition *)
  let k = ref 0 in
  List.iter
    (fun q ->
      if q <> m.Tm.accept && q <> m.Tm.reject then
        List.iter
          (fun s ->
            match m.Tm.delta (q, s) with
            | None -> ()
            | Some { Tm.write; move; next } ->
                incr k;
                let trans = Printf.sprintf "trans%d" !k in
                let trans_atom = a trans [ v "T"; v "T2"; v "P" ] in
                (* fire the transition, inventing the new time point T2 *)
                add
                  (Ast.rule trans_atom
                     [
                       Ast.BPos (a state_pred [ v "T"; qc q ]);
                       Ast.BPos (a head_pred [ v "T"; v "P" ]);
                       Ast.BPos (a tape_pred [ v "T"; v "P"; sc s ]);
                     ]);
                add
                  (Ast.rule (a state_pred [ v "T2"; qc next ])
                     [ Ast.BPos trans_atom ]);
                add
                  (Ast.rule (a tape_pred [ v "T2"; v "P"; sc write ])
                     [ Ast.BPos trans_atom ]);
                add
                  (Ast.rule (a tstep_pred [ v "T"; v "T2" ])
                     [ Ast.BPos trans_atom ]);
                (* copy the rest of the tape *)
                add
                  (Ast.rule
                     (a tape_pred [ v "T2"; v "P2"; v "S" ])
                     [
                       Ast.BPos trans_atom;
                       Ast.BPos (a tape_pred [ v "T"; v "P2"; v "S" ]);
                       Ast.BNeg (a head_pred [ v "T"; v "P2" ]);
                     ]);
                (* head movement, with tape extension at the frontier *)
                (match move with
                | Tm.Stay ->
                    add
                      (Ast.rule (a head_pred [ v "T2"; v "P" ])
                         [ Ast.BPos trans_atom ])
                | Tm.Right ->
                    add
                      (Ast.rule (a head_pred [ v "T2"; v "P2" ])
                         [
                           Ast.BPos trans_atom;
                           Ast.BPos (a tsucc_pred [ v "P"; v "P2" ]);
                         ]);
                    let newcell = Printf.sprintf "newcellR%d" !k in
                    add
                      (Ast.rule
                         (a newcell [ v "T2"; v "P"; v "P3" ])
                         [
                           Ast.BPos trans_atom;
                           Ast.BNeg (a has_succ_pred [ v "P" ]);
                         ]);
                    add
                      (Ast.rule (a tsucc_pred [ v "P"; v "P3" ])
                         [ Ast.BPos (a newcell [ v "T2"; v "P"; v "P3" ]) ]);
                    add
                      (Ast.rule
                         (a tape_pred [ v "T2"; v "P3"; sc m.Tm.blank ])
                         [ Ast.BPos (a newcell [ v "T2"; v "P"; v "P3" ]) ])
                | Tm.Left ->
                    add
                      (Ast.rule (a head_pred [ v "T2"; v "P2" ])
                         [
                           Ast.BPos trans_atom;
                           Ast.BPos (a tsucc_pred [ v "P2"; v "P" ]);
                         ]);
                    let newcell = Printf.sprintf "newcellL%d" !k in
                    add
                      (Ast.rule
                         (a newcell [ v "T2"; v "P"; v "P3" ])
                         [
                           Ast.BPos trans_atom;
                           Ast.BNeg (a has_pred_pred [ v "P" ]);
                         ]);
                    add
                      (Ast.rule (a tsucc_pred [ v "P3"; v "P" ])
                         [ Ast.BPos (a newcell [ v "T2"; v "P"; v "P3" ]) ]);
                    add
                      (Ast.rule
                         (a tape_pred [ v "T2"; v "P3"; sc m.Tm.blank ])
                         [ Ast.BPos (a newcell [ v "T2"; v "P"; v "P3" ]) ])))
          m.Tm.symbols)
    m.Tm.states;
  List.rev !rules

let initial_instance (m : Tm.t) input =
  let input = if input = [] then [ m.Tm.blank ] else input in
  let n = List.length input in
  let tape_rows =
    List.mapi (fun i s -> [ t0; pos_value i; Value.Sym ("s:" ^ s) ]) input
  in
  let succ_rows =
    List.init (n - 1) (fun i -> [ pos_value i; pos_value (i + 1) ])
  in
  Instance.of_list
    [
      (state_pred, [ [ t0; Value.Sym ("q:" ^ m.Tm.start) ] ]);
      (head_pred, [ [ t0; pos_value 0 ] ]);
      (tape_pred, tape_rows);
      (tsucc_pred, succ_rows);
    ]

type sim_result = {
  accepted : bool;
  rejected : bool;
  steps : int;
  invented : int;
  stages : int;
  final_tape : (string * string) list;
}

let decode_sym (v : Value.t) =
  match v with
  | Value.Sym s when String.length s > 2 && String.sub s 0 2 = "s:" ->
      String.sub s 2 (String.length s - 2)
  | other -> Value.to_string other

let simulate ?(max_stages = 100_000) (m : Tm.t) input =
  let program = compile m in
  let inst = initial_instance m input in
  match Datalog.Invent.run ~max_stages program inst with
  | Datalog.Invent.Out_of_fuel { stages; _ } ->
      failwith
        (Printf.sprintf "Tm_compile.simulate: out of fuel after %d stages"
           stages)
  | Datalog.Invent.Fixpoint { instance; stages; invented } ->
      let has p = not (Relation.is_empty (Instance.find p instance)) in
      let final_tape =
        if not (has accepted_pred) then []
        else
          (* order cells by walking the tsucc chain from the leftmost *)
          let tsucc =
            Relation.fold
              (fun t acc -> (Tuple.get t 0, Tuple.get t 1) :: acc)
              (Instance.find tsucc_pred instance)
              []
          in
          let cells =
            Relation.fold
              (fun t acc ->
                let p = Tuple.get t 0 and s = Tuple.get t 1 in
                (p, s) :: acc)
              (Instance.find final_tape_pred instance)
              []
          in
          let has_predecessor p =
            List.exists (fun (_, q) -> Value.equal q p) tsucc
          in
          let start =
            List.find_opt (fun (p, _) -> not (has_predecessor p)) cells
          in
          let rec walk p acc fuel =
            if fuel <= 0 then acc
            else
              let acc =
                match
                  List.find_opt (fun (q, _) -> Value.equal q p) cells
                with
                | Some (_, s) -> (Value.to_string p, decode_sym s) :: acc
                | None -> acc
              in
              match
                List.find_opt (fun (q, _) -> Value.equal q p) tsucc
              with
              | Some (_, p') -> walk p' acc (fuel - 1)
              | None -> acc
          in
          (match start with
          | None -> []
          | Some (p0, _) -> List.rev (walk p0 [] (List.length tsucc + 2)))
      in
      {
        accepted = has accepted_pred;
        rejected = has rejected_pred;
        steps = Relation.cardinal (Instance.find tstep_pred instance);
        invented;
        stages;
        final_tape;
      }

let agrees_with_reference ?(fuel = 10_000) (m : Tm.t) input =
  let reference = Tm.run ~fuel m input in
  let sim = simulate ~max_stages:(20 * fuel) m input in
  match reference with
  | Tm.Accepted { final; _ } ->
      sim.accepted
      && (not sim.rejected)
      &&
      (* compare non-blank tape contents *)
      let ref_tape =
        List.filter (fun (_, s) -> s <> m.Tm.blank) final.Tm.tape
        |> List.map snd
      in
      let sim_tape =
        List.filter (fun (_, s) -> s <> m.Tm.blank) sim.final_tape
        |> List.map snd
      in
      ref_tape = sim_tape
  | Tm.Rejected _ -> not sim.accepted
  | Tm.Ran_out_of_fuel _ -> true (* nothing to compare *)
