(** Compiling Turing machines to Datalog¬new — the executable content of
    Theorem 4.6 ("Datalog¬new expresses all computable queries").

    The proof sketch in §4.3 simulates a Turing machine using invented
    values for the unbounded workspace. This module performs the
    construction concretely:

    - each machine step {e invents a new time point} [T2] and derives
      [state(T2, q')], [head(T2, P')] and the new tape;
    - the tape is copied from [T] to [T2] cell-by-cell, except the head
      cell, which receives the written symbol;
    - moving past the materialized tape {e invents a new cell} (with
      successor links and a blank), so space is unbounded — this is
      exactly how invention breaks the polynomial space barrier;
    - halting states have no transition rules, so the program reaches its
      inflationary fixpoint iff the machine halts.

    Fidelity caveat: a machine that halts by {e missing} a transition
    (implicit reject) makes the compiled program reach a fixpoint with
    neither [accepted] nor [rejected] derived; machines with explicit
    reject transitions derive [rejected]. *)



(** Predicate names used by the compilation (also the interface for
    inspecting results). *)
val state_pred : string  (** [state(T, Q)] *)

val head_pred : string
(** [head(T, P)] *)

val tape_pred : string
(** [tape(T, P, S)] *)

val tsucc_pred : string
(** [tsucc(P, P')]: cell [P'] is right of [P] *)

val tstep_pred : string
(** [tstep(T, T')]: step relation on times *)

val accepted_pred : string
(** 0-ary: derived on acceptance *)

val rejected_pred : string
(** 0-ary: derived on explicit rejection *)

val final_tape_pred : string
(** [final_tape(P, S)] at acceptance *)

(** [compile m] produces the Datalog¬new program simulating [m]. *)
val compile : Tm.t -> Datalog.Ast.program

(** [initial_instance m input] encodes the machine's initial configuration
    (input written on cells [p0, p1, ...], head on [p0], time [t0]). *)
val initial_instance : Tm.t -> string list -> Relational.Instance.t

type sim_result = {
  accepted : bool;
  rejected : bool;
  steps : int;  (** simulated machine steps (cardinality of [tstep]) *)
  invented : int;  (** fresh values minted during the run *)
  stages : int;  (** inflationary stages used *)
  final_tape : (string * string) list;
      (** (cell display name, symbol) at acceptance, in tape order —
          empty unless accepted *)
}

(** [simulate ?max_stages m input] compiles, runs under {!Datalog.Invent},
    and decodes the outcome. @raise Failure if fuel runs out. *)
val simulate : ?max_stages:int -> Tm.t -> string list -> sim_result

(** [agrees_with_reference ?fuel m input] runs both the direct
    interpreter {!Tm.run} and the Datalog¬new simulation and checks they
    agree on acceptance and on the final tape contents. *)
val agrees_with_reference : ?fuel:int -> Tm.t -> string list -> bool
