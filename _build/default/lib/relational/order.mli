(** Ordered databases (Section 4.5 of the paper).

    An ordered database adjoins to an instance a total order on its active
    domain. Theorems 4.7/4.8 state that with this extra structure the
    deterministic languages capture db-ptime / db-pspace. We materialize the
    order as relations:

    - [lt(x, y)] — the strict total order (quadratic in the domain size),
    - [succ(x, y)] — its successor relation (linear),
    - [first(x)] / [last(x)] — the min and max constants, which Theorem 4.7
      notes must be given explicitly for semi-positive Datalog¬.

    The order used is {!Value.compare} restricted to the active domain, so
    it is deterministic for a given instance. *)

(** Names of the adjoined relations, overridable in [adjoin]. *)
type naming = {
  lt : string;
  succ : string;
  first : string;
  last : string;
}

val default_naming : naming

(** [adjoin ?naming ?include_lt inst] returns [inst] extended with the order
    relations over [adom inst]. [include_lt] (default [true]) controls
    whether the quadratic [lt] relation is materialized. On an instance with
    an empty active domain the order relations are all empty. *)
val adjoin : ?naming:naming -> ?include_lt:bool -> Instance.t -> Instance.t

(** [order_relations naming] lists the relation names added by [adjoin] —
    useful for restricting answers back to the original schema. *)
val order_relations : naming -> string list

(** [is_ordered ?naming inst] checks that [inst] contains succ/first/last
    relations forming a valid successor structure on some subset of its
    domain: exactly one [first] and one [last] (or all empty on empty
    domain), and [succ] a chain from first to last. *)
val is_ordered : ?naming:naming -> Instance.t -> bool
