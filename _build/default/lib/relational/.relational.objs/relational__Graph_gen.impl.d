lib/relational/graph_gen.ml: Array Fun Hashtbl Instance List Printf Random Relation Tuple Value
