lib/relational/instance.mli: Format Relation Schema Tuple Value
