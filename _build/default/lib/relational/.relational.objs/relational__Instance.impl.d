lib/relational/instance.ml: Array Buffer Format List Map Printf Relation Schema Set String Tuple Value
