lib/relational/tuple.mli: Format Value
