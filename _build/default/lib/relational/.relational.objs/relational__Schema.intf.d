lib/relational/schema.mli: Format
