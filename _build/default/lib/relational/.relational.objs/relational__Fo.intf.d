lib/relational/fo.mli: Format Instance Relation Value
