lib/relational/algebra.ml: Format Hashtbl Instance List Relation Schema Tuple Value
