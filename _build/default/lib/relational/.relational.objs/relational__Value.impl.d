lib/relational/value.ml: Format Fun Hashtbl Int Scanf String
