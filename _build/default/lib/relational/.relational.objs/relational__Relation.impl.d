lib/relational/relation.ml: Array Format List Printf Set Tuple Value
