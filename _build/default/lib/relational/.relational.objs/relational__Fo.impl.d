lib/relational/fo.ml: Format Hashtbl Instance List Printf Relation Set Tuple Value
