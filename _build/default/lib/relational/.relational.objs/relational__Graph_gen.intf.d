lib/relational/graph_gen.mli: Instance Relation Value
