lib/relational/schema.ml: Array Format List Map Printf String
