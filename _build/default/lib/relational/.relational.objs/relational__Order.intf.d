lib/relational/order.mli: Instance
