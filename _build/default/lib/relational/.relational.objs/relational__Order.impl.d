lib/relational/order.ml: Instance List Relation Tuple Value
