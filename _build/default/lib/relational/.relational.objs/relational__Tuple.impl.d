lib/relational/tuple.ml: Array Format Int List Printf Value
