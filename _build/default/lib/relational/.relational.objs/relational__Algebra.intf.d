lib/relational/algebra.mli: Format Instance Relation Schema Tuple Value
