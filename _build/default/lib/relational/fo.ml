type term = Var of string | Cst of Value.t

type formula =
  | True
  | False
  | Atom of string * term list
  | Eq of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string list * formula
  | Forall of string list * formula

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let free_vars f =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let note bound x =
    if (not (List.mem x bound)) && not (Hashtbl.mem seen x) then (
      Hashtbl.add seen x ();
      out := x :: !out)
  in
  let term bound = function Var x -> note bound x | Cst _ -> () in
  let rec go bound = function
    | True | False -> ()
    | Atom (_, ts) -> List.iter (term bound) ts
    | Eq (a, b) ->
        term bound a;
        term bound b
    | Not f -> go bound f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go bound a;
        go bound b
    | Exists (xs, f) | Forall (xs, f) -> go (xs @ bound) f
  in
  go [] f;
  List.rev !out

let constants f =
  let module VSet = Set.Make (Value) in
  let acc = ref VSet.empty in
  let term = function Cst v -> acc := VSet.add v !acc | Var _ -> () in
  let rec go = function
    | True | False -> ()
    | Atom (_, ts) -> List.iter term ts
    | Eq (a, b) ->
        term a;
        term b
    | Not f -> go f
    | And (a, b) | Or (a, b) | Implies (a, b) ->
        go a;
        go b
    | Exists (_, f) | Forall (_, f) -> go f
  in
  go f;
  VSet.elements !acc

type env = (string * Value.t) list

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Fo: unbound variable %s" x)

let term_value env = function Var x -> lookup env x | Cst v -> v

let default_dom inst f =
  let module VSet = Set.Make (Value) in
  VSet.elements
    (VSet.union
       (VSet.of_list (Instance.adom inst))
       (VSet.of_list (constants f)))

let holds ?dom inst env f =
  let dom = match dom with Some d -> d | None -> default_dom inst f in
  let rec go env = function
    | True -> true
    | False -> false
    | Atom (p, ts) ->
        Instance.mem_fact p
          (Tuple.of_list (List.map (term_value env) ts))
          inst
    | Eq (a, b) -> Value.equal (term_value env a) (term_value env b)
    | Not f -> not (go env f)
    | And (a, b) -> go env a && go env b
    | Or (a, b) -> go env a || go env b
    | Implies (a, b) -> (not (go env a)) || go env b
    | Exists (xs, f) -> quant_ex env xs f
    | Forall (xs, f) -> not (quant_ex env xs (Not f))
  and quant_ex env xs f =
    match xs with
    | [] -> go env f
    | x :: rest -> List.exists (fun v -> quant_ex ((x, v) :: env) rest f) dom
  in
  go env f

let eval ?dom inst f vars =
  let fv = free_vars f in
  List.iter
    (fun x ->
      if not (List.mem x vars) then
        invalid_arg
          (Printf.sprintf "Fo.eval: free variable %s not in output list" x))
    fv;
  let dom = match dom with Some d -> d | None -> default_dom inst f in
  let rec enum env = function
    | [] ->
        if holds ~dom inst env f then
          [ Tuple.of_list (List.map (fun x -> lookup env x) vars) ]
        else []
    | x :: rest ->
        List.concat_map (fun v -> enum ((x, v) :: env) rest) dom
  in
  Relation.of_list (enum [] vars)

let sentence ?dom inst f =
  (match free_vars f with
  | [] -> ()
  | x :: _ ->
      invalid_arg (Printf.sprintf "Fo.sentence: free variable %s" x));
  holds ?dom inst [] f

let pp_term ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Cst v -> Value.pp ppf v

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom (p, ts) ->
      Format.fprintf ppf "%s(%a)" p
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_term)
        ts
  | Eq (a, b) -> Format.fprintf ppf "%a = %a" pp_term a pp_term b
  | Not f -> Format.fprintf ppf "\xc2\xac%a" pp_paren f
  | And (a, b) ->
      Format.fprintf ppf "%a \xe2\x88\xa7 %a" pp_paren a pp_paren b
  | Or (a, b) -> Format.fprintf ppf "%a \xe2\x88\xa8 %a" pp_paren a pp_paren b
  | Implies (a, b) ->
      Format.fprintf ppf "%a \xe2\x86\x92 %a" pp_paren a pp_paren b
  | Exists (xs, f) ->
      Format.fprintf ppf "\xe2\x88\x83%a %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_string)
        xs pp_paren f
  | Forall (xs, f) ->
      Format.fprintf ppf "\xe2\x88\x80%a %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_string)
        xs pp_paren f

and pp_paren ppf f =
  match f with
  | True | False | Atom _ | Eq _ | Not _ -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f
