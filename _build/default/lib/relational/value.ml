type t =
  | Int of int
  | Str of string
  | Sym of string
  | New of int

let rank = function Int _ -> 0 | Str _ -> 1 | Sym _ -> 2 | New _ -> 3

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y | Sym x, Sym y -> String.compare x y
  | New x, New y -> Int.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Str s -> Hashtbl.hash (1, s)
  | Sym s -> Hashtbl.hash (2, s)
  | New n -> Hashtbl.hash (3, n)

let is_invented = function New _ -> true | _ -> false
let int n = Int n
let str s = Str s
let sym s = Sym s

let pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Sym s -> Format.pp_print_string ppf s
  | New n -> Format.fprintf ppf "\xce\xbd%d" n

let to_string v = Format.asprintf "%a" pp v

let parse s =
  let n = String.length s in
  if n = 0 then invalid_arg "Value.parse: empty string"
  else if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    Str (Scanf.sscanf s "%S" Fun.id)
  else
    match int_of_string_opt s with Some i -> Int i | None -> Sym s

module Gen = struct
  type t = int ref

  let create () = ref 0

  let fresh g =
    let v = New !g in
    incr g;
    v

  let count g = !g
end
