(** First-order logic over relational instances (relational calculus), with
    active-domain semantics.

    Quantifiers range over the active domain of the instance (optionally
    extended with extra constants), which is the standard domain-independent
    reading used throughout the paper. [eval] computes the set of satisfying
    valuations of a formula's free variables — i.e. the answer of a calculus
    query — and [holds] decides a sentence. *)

type term = Var of string | Cst of Value.t

type formula =
  | True
  | False
  | Atom of string * term list  (** [R(t1, ..., tk)] *)
  | Eq of term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Exists of string list * formula
  | Forall of string list * formula

(** Conjunction / disjunction of a list ([True]/[False] when empty). *)
val conj : formula list -> formula

val disj : formula list -> formula

(** [free_vars f] lists the free variables, each once, in first-occurrence
    order. *)
val free_vars : formula -> string list

(** [constants f] lists the constants mentioned by [f]. *)
val constants : formula -> Value.t list

type env = (string * Value.t) list

(** [holds ?dom inst env f] decides satisfaction of [f] under valuation
    [env], quantifiers ranging over [dom] (default: active domain of [inst]
    plus constants of [f]).
    @raise Failure if a free variable of [f] is unbound by [env]. *)
val holds : ?dom:Value.t list -> Instance.t -> env -> formula -> bool

(** [eval ?dom inst f vars] computes the relation
    [{ (v(x))_{x in vars} | v valuates free_vars f into dom, f holds }].
    [vars] must be a superset of [free_vars f] (extra variables range over
    the whole domain — the usual calculus convention is disallowed here:
    @raise Invalid_argument if [vars] misses a free variable). *)
val eval : ?dom:Value.t list -> Instance.t -> formula -> string list -> Relation.t

(** [sentence ?dom inst f] decides a closed formula.
    @raise Invalid_argument if [f] has free variables. *)
val sentence : ?dom:Value.t list -> Instance.t -> formula -> bool

val pp : Format.formatter -> formula -> unit
