type t = Value.t array

let make vs = Array.copy vs
let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length

let get t i =
  if i < 0 || i >= Array.length t then
    invalid_arg
      (Printf.sprintf "Tuple.get: index %d out of bounds (arity %d)" i
         (Array.length t))
  else t.(i)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) (Array.length t) t

let project t cols = Array.of_list (List.map (fun i -> get t i) cols)
let concat = Array.append
let values t = t
let exists = Array.exists
let rename t perm = Array.map (fun i -> get t i) perm

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    t

let to_string t = Format.asprintf "%a" pp t
