(** Constant tuples.

    A tuple is an immutable array of {!Value.t}. Positions play the role of
    attributes (the paper's named perspective is recovered by {!Schema}
    which maps attribute names to positions). *)

type t = private Value.t array

(** [make vs] creates a tuple from an array. The array is copied, so later
    mutation of [vs] does not affect the tuple. *)
val make : Value.t array -> t

(** [of_list vs] creates a tuple from a list of values. *)
val of_list : Value.t list -> t

val to_list : t -> Value.t list

(** [arity t] is the number of components. *)
val arity : t -> int

(** [get t i] is the [i]-th component (0-based).
    @raise Invalid_argument if [i] is out of bounds. *)
val get : t -> int -> Value.t

(** Lexicographic order; tuples of different arities are ordered by arity
    first so that mixed sets behave sanely. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int

(** [project t cols] keeps components at positions [cols], in that order
    (repetition allowed). *)
val project : t -> int list -> t

(** [concat a b] juxtaposes two tuples. *)
val concat : t -> t -> t

(** [values t] is the underlying array (not a copy; do not mutate). *)
val values : t -> Value.t array

(** [exists p t] tests whether some component satisfies [p]. *)
val exists : (Value.t -> bool) -> t -> bool

(** [rename t perm] reorders: component [i] of the result is component
    [perm.(i)] of [t]. *)
val rename : t -> int array -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
