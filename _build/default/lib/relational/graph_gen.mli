(** Graph workload generators for benchmarks and tests.

    All generators return a binary edge relation bound to a configurable
    relation name (default ["G"], matching the paper's examples). Vertices
    are the symbolic constants [n0, n1, ...] unless [ints] is set, in which
    case they are integers (handy for ordered-database experiments). A
    seeded PRNG makes every generator deterministic. *)

(** [vertex ~ints i] is the [i]-th vertex constant. *)
val vertex : ?ints:bool -> int -> Value.t

(** [chain n] is the path [v0 -> v1 -> ... -> v(n-1)]: [n-1] edges, the
    worst case for naive evaluation of transitive closure. *)
val chain : ?name:string -> ?ints:bool -> int -> Instance.t

(** [cycle n] is the directed cycle on [n] vertices. *)
val cycle : ?name:string -> ?ints:bool -> int -> Instance.t

(** [complete n] has all [n(n-1)] edges (no self-loops). *)
val complete : ?name:string -> ?ints:bool -> int -> Instance.t

(** [grid w h] is the directed w×h grid (edges right and down). *)
val grid : ?name:string -> ?ints:bool -> int -> int -> Instance.t

(** [random n m ~seed] draws [m] distinct random directed edges (no
    self-loops) on [n] vertices. *)
val random : ?name:string -> ?ints:bool -> seed:int -> int -> int -> Instance.t

(** [random_dag n m ~seed] like [random] but edges only go from lower to
    higher vertex index, so the result is acyclic. *)
val random_dag :
  ?name:string -> ?ints:bool -> seed:int -> int -> int -> Instance.t

(** [binary_tree depth] is the complete binary tree with edges from parent
    to child; [2^depth - 1] vertices. *)
val binary_tree : ?name:string -> ?ints:bool -> int -> Instance.t

(** [two_cycles k] is the disjoint union of [k] 2-cycles
    [a_i <-> b_i] — the workload for the nondeterministic orientation
    experiment (E5): it has exactly [2^k] orientations. *)
val two_cycles : ?name:string -> int -> Instance.t

(** [game_chain n] is the move relation of a chain game
    [v0 -> v1 -> ... -> v(n-1)] used for win-game benchmarks: positions
    alternate won/lost, no unknowns. *)
val game_chain : ?name:string -> int -> Instance.t

(** [paper_game ()] is the exact instance K of Example 3.2:
    moves = {(b,c), (c,a), (a,b), (a,d), (d,e), (d,f), (f,g)}. *)
val paper_game : ?name:string -> unit -> Instance.t

(** [reference_tc edges] computes the transitive closure of a binary
    relation by Floyd–Warshall — an engine-independent oracle for tests. *)
val reference_tc : Relation.t -> Relation.t
