type naming = { lt : string; succ : string; first : string; last : string }

let default_naming = { lt = "lt"; succ = "succ"; first = "first"; last = "last" }

let order_relations n = [ n.lt; n.succ; n.first; n.last ]

let adjoin ?(naming = default_naming) ?(include_lt = true) inst =
  let dom = Instance.adom inst in
  match dom with
  | [] -> inst
  | d0 :: _ ->
      let rec last = function [ x ] -> x | _ :: t -> last t | [] -> d0 in
      let dlast = last dom in
      let succ_rows =
        let rec pairs = function
          | a :: (b :: _ as t) -> [ a; b ] :: pairs t
          | _ -> []
        in
        pairs dom
      in
      let lt_rows =
        if not include_lt then []
        else
          List.concat_map
            (fun a ->
              List.filter_map
                (fun b ->
                  if Value.compare a b < 0 then Some [ a; b ] else None)
                dom)
            dom
      in
      let inst = Instance.set naming.succ (Relation.of_rows succ_rows) inst in
      let inst =
        if include_lt then
          Instance.set naming.lt (Relation.of_rows lt_rows) inst
        else inst
      in
      let inst =
        Instance.set naming.first (Relation.of_rows [ [ d0 ] ]) inst
      in
      Instance.set naming.last (Relation.of_rows [ [ dlast ] ]) inst

let is_ordered ?(naming = default_naming) inst =
  let succ = Instance.find naming.succ inst in
  let first = Instance.find naming.first inst in
  let last = Instance.find naming.last inst in
  if Relation.is_empty succ && Relation.is_empty first && Relation.is_empty last
  then true
  else
    match (Relation.to_list first, Relation.to_list last) with
    | [ f ], [ l ] when Tuple.arity f = 1 && Tuple.arity l = 1 ->
        (* walk the successor chain from first; it must be a function,
           injective, and reach last. *)
        let next =
          Relation.fold
            (fun t acc ->
              if Tuple.arity t <> 2 then acc
              else (Tuple.get t 0, Tuple.get t 1) :: acc)
            succ []
        in
        let functional =
          let srcs = List.map fst next and dsts = List.map snd next in
          let distinct xs =
            List.length (List.sort_uniq Value.compare xs) = List.length xs
          in
          distinct srcs && distinct dsts
        in
        functional
        &&
        let rec walk v seen steps =
          if steps > List.length next + 1 then false
          else if Value.equal v (Tuple.get l 0) then
            not (List.exists (fun (s, _) -> Value.equal s v) next)
          else
            match List.assoc_opt v next with
            | None -> false
            | Some w ->
                (not (List.exists (Value.equal w) seen))
                && walk w (w :: seen) (steps + 1)
        in
        walk (Tuple.get f 0) [ Tuple.get f 0 ] 0
    | _ -> false
