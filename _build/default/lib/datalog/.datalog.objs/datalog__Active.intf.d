lib/datalog/active.mli: Ast Instance Relational Tuple
