lib/datalog/production.ml: Ast Eval_util Hashtbl Instance List Matcher Option Printf Random Relation Relational Tuple
