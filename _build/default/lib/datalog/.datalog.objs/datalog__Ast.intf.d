lib/datalog/ast.mli: Relational Schema Tuple Value
