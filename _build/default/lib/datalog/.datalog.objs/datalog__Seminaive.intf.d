lib/datalog/seminaive.mli: Ast Instance Relation Relational
