lib/datalog/magic.ml: Ast Hashtbl Instance List Printf Queue Relation Relational Seminaive String Tuple Value
