lib/datalog/semipositive.mli: Ast Instance Relation Relational
