lib/datalog/seminaive.ml: Ast Eval_util Instance Relational
