lib/datalog/lexer.mli:
