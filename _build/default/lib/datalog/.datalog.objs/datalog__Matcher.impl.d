lib/datalog/matcher.ml: Ast Fun Hashtbl Instance Int List Option Relation Relational Set String Tuple Value
