lib/datalog/depgraph.ml: Ast Format Hashtbl List Option String
