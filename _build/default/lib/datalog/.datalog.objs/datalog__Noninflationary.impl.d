lib/datalog/noninflationary.ml: Ast Eval_util Instance List Map Printf Relation Relational Stdlib Tuple
