lib/datalog/magic.mli: Ast Instance Relation Relational Tuple
