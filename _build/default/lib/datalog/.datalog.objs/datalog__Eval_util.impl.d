lib/datalog/eval_util.ml: Ast Instance List Matcher Relation Relational Set String Value
