lib/datalog/pretty.mli: Ast Format Relational Tuple
