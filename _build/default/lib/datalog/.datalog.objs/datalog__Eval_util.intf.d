lib/datalog/eval_util.mli: Ast Instance Matcher Relational Value
