lib/datalog/active.ml: Ast Instance List Matcher Queue Relational Set Tuple Value
