lib/datalog/stratified.mli: Ast Instance Relation Relational
