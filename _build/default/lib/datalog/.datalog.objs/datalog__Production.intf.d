lib/datalog/production.mli: Ast Instance Relational Tuple
