lib/datalog/pretty.ml: Ast Format Relational String Tuple Value
