lib/datalog/invent.mli: Ast Instance Relation Relational
