lib/datalog/parser.ml: Ast Format Lexer List Printf Relational String Value
