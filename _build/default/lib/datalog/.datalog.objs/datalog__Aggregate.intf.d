lib/datalog/aggregate.mli: Ast Instance Relation Relational
