lib/datalog/lexer.ml: Buffer Format List Printf String
