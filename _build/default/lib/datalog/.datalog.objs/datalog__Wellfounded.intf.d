lib/datalog/wellfounded.mli: Ast Instance Relation Relational Tuple
