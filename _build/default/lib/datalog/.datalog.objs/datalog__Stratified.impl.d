lib/datalog/stratified.ml: Ast Eval_util Instance List Relational Stratify
