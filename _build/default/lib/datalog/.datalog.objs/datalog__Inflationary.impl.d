lib/datalog/inflationary.ml: Ast Eval_util Instance Relational
