lib/datalog/ast.ml: Format Hashtbl List Option Relational Schema Set String Tuple Value
