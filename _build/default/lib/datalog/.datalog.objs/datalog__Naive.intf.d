lib/datalog/naive.mli: Ast Instance Relation Relational
