lib/datalog/inflationary.mli: Ast Instance Relation Relational
