lib/datalog/stable.ml: Ast Eval_util Instance List Matcher Printf Relation Relational Wellfounded
