lib/datalog/stratify.ml: Array Ast Depgraph Hashtbl List Printf
