lib/datalog/stratify.mli: Ast
