lib/datalog/stable.mli: Ast Instance Relational
