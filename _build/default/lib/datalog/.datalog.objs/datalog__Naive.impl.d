lib/datalog/naive.ml: Ast Eval_util Instance Relational
