lib/datalog/semipositive.ml: Ast Eval_util Instance Relational Stratify
