lib/datalog/matcher.mli: Ast Instance Relation Relational Tuple Value
