lib/datalog/noninflationary.mli: Ast Instance Relation Relational Stdlib Tuple
