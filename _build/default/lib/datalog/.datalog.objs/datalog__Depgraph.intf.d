lib/datalog/depgraph.mli: Ast Format
