lib/datalog/aggregate.ml: Ast Eval_util Format Hashtbl Instance List Matcher Option Relational Stratified Tuple Value
