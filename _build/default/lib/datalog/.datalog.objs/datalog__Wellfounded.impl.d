lib/datalog/wellfounded.ml: Ast Eval_util Instance List Matcher Relational
