lib/datalog/invent.ml: Ast Hashtbl Instance List Matcher Printf Relation Relational Set Tuple Value
