open Relational

let program_dom p inst =
  let module VSet = Set.Make (Value) in
  VSet.elements
    (VSet.union
       (VSet.of_list (Ast.adom p))
       (VSet.of_list (Instance.adom inst)))

type prepared = (Ast.rule * Matcher.prepared) list

let prepare p = List.map (fun r -> (r, Matcher.prepare r)) p
let rules p = p

let fire_rule ?delta db dom (rule, plan) k =
  let substs = Matcher.run ?delta ~dom plan db in
  List.iter
    (fun subst ->
      let _bottom, facts = Matcher.instantiate_heads subst rule.Ast.head in
      List.iter (fun f -> k f) facts)
    substs

let consequences prepared inst ~dom =
  let db = Matcher.Db.of_instance inst in
  let out = ref Instance.empty in
  List.iter
    (fun rp ->
      fire_rule db dom rp (fun (pos, pred, tup) ->
          if pos then out := Instance.add_fact pred tup !out
          else
            invalid_arg
              "Eval_util.consequences: negative head (use consequences_signed)"))
    prepared;
  !out

let consequences_signed prepared inst ~dom =
  let db = Matcher.Db.of_instance inst in
  let pos = ref Instance.empty and neg = ref Instance.empty in
  List.iter
    (fun rp ->
      fire_rule db dom rp (fun (p, pred, tup) ->
          if p then pos := Instance.add_fact pred tup !pos
          else neg := Instance.add_fact pred tup !neg))
    prepared;
  (!pos, !neg)

let delta_round prepared delta_preds current delta ~dom =
  let db = Matcher.Db.of_instance current in
  let out = ref Instance.empty in
  List.iter
    (fun (rule, plan) ->
      let body_delta_preds =
        List.sort_uniq String.compare
          (List.filter_map
             (function
               | Ast.BPos a when List.mem a.Ast.pred delta_preds ->
                   Some a.Ast.pred
               | _ -> None)
             rule.Ast.body)
      in
      List.iter
        (fun pred ->
          let drel = Instance.find pred delta in
          if not (Relation.is_empty drel) then
            let substs = Matcher.run ~delta:(pred, drel) ~dom plan db in
            List.iter
              (fun subst ->
                let _, facts =
                  Matcher.instantiate_heads subst rule.Ast.head
                in
                List.iter
                  (fun (pos, p, t) ->
                    if pos && not (Instance.mem_fact p t current) then
                      out := Instance.add_fact p t !out)
                  facts)
              substs)
        body_delta_preds)
    prepared;
  !out

let seminaive_fixpoint prepared ~delta_preds ~dom inst =
  let first = consequences prepared inst ~dom in
  let delta0 = Instance.diff first inst in
  (* [stages] counts the applications of Γ that inferred new facts, to
     agree with the naive engine's count. *)
  let rec loop current delta stages =
    if Instance.total_facts delta = 0 then (current, stages)
    else
      let current = Instance.union current delta in
      let fresh = delta_round prepared delta_preds current delta ~dom in
      loop current fresh (stages + 1)
  in
  loop inst delta0 0

let naive_fixpoint prepared ~dom inst =
  let rec loop current stages =
    let derived = consequences prepared current ~dom in
    let next = Instance.union current derived in
    if Instance.equal next current then (current, stages)
    else loop next (stages + 1)
  in
  loop inst 0

let stage_trace prepared ~dom inst =
  let rec loop current acc =
    let derived = consequences prepared current ~dom in
    let next = Instance.union current derived in
    if Instance.equal next current then List.rev (current :: acc)
    else loop next (current :: acc)
  in
  loop inst []

type stats = { stages : int; facts_inferred : int }

let restrict_idb program inst = Instance.restrict (Ast.idb program) inst
