open Relational

exception Not_stratifiable of string

type result = { instance : Instance.t; strata : int; stages : int }

let eval p inst =
  match Stratify.stratify p with
  | Error msg -> raise (Not_stratifiable msg)
  | Ok { strata; _ } ->
      (* adom(P, K) is shared by all strata: no stratum can invent
         values, so the domain is fixed up front. *)
      let dom = Eval_util.program_dom p inst in
      let instance, stages =
        List.fold_left
          (fun (current, stages) stratum ->
            match stratum with
            | [] -> (current, stages)
            | _ ->
                let prepared = Eval_util.prepare stratum in
                let next, s =
                  Eval_util.seminaive_fixpoint prepared
                    ~delta_preds:(Ast.idb stratum) ~dom current
                in
                (next, stages + s))
          (inst, 0) strata
      in
      { instance; strata = List.length strata; stages }

let answer p inst pred = Instance.find pred (eval p inst).instance
