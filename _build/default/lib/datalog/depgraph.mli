(** Predicate dependency graph and strongly connected components.

    The graph has an edge [q -> p] (labelled negative when [q] appears
    under [¬]) for every rule with head predicate [p] and body literal over
    [q]. Stratifiability (§3.2) is the absence of a negative edge inside a
    cycle. *)

type edge = {
  src : string;  (** body predicate *)
  dst : string;  (** head predicate *)
  negative : bool;  (** [src] occurs negated in the rule body *)
}

(** [edges p] lists dependency edges (deduplicated; an edge that occurs
    both positively and negatively is reported twice, once per
    polarity). Head retractions ([!R(...)] heads) count as heads. *)
val edges : Ast.program -> edge list

(** [sccs p] returns the strongly connected components of the dependency
    graph restricted to the predicates of [p], in reverse topological
    order (dependencies first). Every predicate appears in exactly one
    component. *)
val sccs : Ast.program -> string list list

(** [recursive_with p a b] tests whether [a] and [b] are in the same
    component (mutually recursive). *)
val recursive_with : Ast.program -> string -> string -> bool

(** [negative_in_cycle p] returns a witness negative edge lying inside an
    SCC, if any — the obstruction to stratifiability. *)
val negative_in_cycle : Ast.program -> edge option

(** [pp_dot ppf p] renders the graph in Graphviz dot syntax (negative
    edges dashed). *)
val pp_dot : Format.formatter -> Ast.program -> unit
