(** Rule instantiation: enumerating the valuations that satisfy a rule body
    against a database.

    This is the shared workhorse of every engine in the family. Bodies are
    evaluated by an index-backed nested-loop join over the positive atoms
    (greedy most-bound-first ordering) with negative and (in)equality
    literals applied as soon as their variables are bound. Negative
    literals are checked against the same database — the "not inferred so
    far" reading of the paper's immediate-consequence operator (§4.1).

    An instantiation of a rule w.r.t. K (paper, §4.1) maps each variable
    into [adom(P, K)]; because our rules are range-restricted (safety
    checks in {!Ast}), enumerating joins over the stored relations produces
    exactly those valuations without materializing the domain. *)

open Relational

(** A database view with memoized secondary indexes. Build one per
    evaluation stage (indexes are only valid for the instance supplied). *)
module Db : sig
  type t

  val of_instance : Instance.t -> t

  (** [relation db p] is the relation bound to predicate [p]. *)
  val relation : t -> string -> Relation.t

  (** [lookup db p bindings] returns the tuples of [p] agreeing with
      [bindings], a list of (position, value) constraints. Builds (and
      caches) a hash index on the constrained positions. *)
  val lookup : t -> string -> (int * Value.t) list -> Tuple.t list

  (** [mem db p tup] tests a ground fact. *)
  val mem : t -> string -> Tuple.t -> bool
end

(** A rule body prepared for evaluation (atom ordering precomputed). *)
type prepared

(** [prepare rule] plans the body join. *)
val prepare : Ast.rule -> prepared

(** [run prepared db] enumerates all satisfying substitutions for the body.
    Each substitution binds every body variable (and hence every head
    variable of a safe rule).

    [delta]: when [Some (pred, rel)], restricts one positive occurrence of
    [pred] at a time to range over [rel] instead of its full relation, and
    unions the results — the semi-naive evaluation primitive. If the body
    has no positive occurrence of [pred] the result is empty.

    [dom]: the active domain [adom(P, K)]. Variables not bound by a
    positive atom (the paper allows head variables bound only by negative
    literals, cf. Example 4.4) range over [dom], as do ∀-quantified
    variables.

    [neg_db]: when supplied, negative literals are checked against this
    database instead of [db] — the Gelfond–Lifschitz transform primitive
    used by the well-founded engine (positives grow in [db] while the
    negation context stays fixed).

    @raise Invalid_argument if the rule needs a domain (it has
    non-positively-bound or ∀ variables) and [dom] was not supplied. *)
val run :
  ?delta:string * Relation.t ->
  ?dom:Value.t list ->
  ?neg_db:Db.t ->
  prepared ->
  Db.t ->
  Ast.subst list

(** [satisfies db subst blits] checks body literals under a full
    substitution (quantifier-free). Used by the nondeterministic engines
    to re-check applicability.
    @raise Ast.Check_error on unbound variables. *)
val satisfies : Db.t -> Ast.subst -> Ast.blit list -> bool

(** [instantiate_heads subst heads] grounds head literals into
    [(polarity, pred, tuple)] triples where polarity [true] asserts and
    [false] retracts; ⊥ is returned as the [bottom] flag.
    Result: [(bottom, facts)]. *)
val instantiate_heads :
  Ast.subst -> Ast.hlit list -> bool * (bool * string * Tuple.t) list
