type token =
  | IDENT of string
  | QVAR of string
  | INT of int
  | STRING of string
  | QSYM of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | ARROW
  | QUERY
  | BANG
  | EQ
  | NEQ
  | COLON
  | KW_NOT
  | KW_FORALL
  | KW_BOTTOM
  | EOF

exception Lex_error of int * string

let err line fmt = Format.kasprintf (fun s -> raise (Lex_error (line, s))) fmt

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

(* '\'' is deliberately excluded from identifiers to keep quoted symbols
   unambiguous *)
let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let push t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    (match c with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '%' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | '/' when peek 1 = Some '/' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | '/' when peek 1 = Some '*' ->
        let depth = ref 1 in
        i := !i + 2;
        let start_line = !line in
        while !depth > 0 do
          if !i >= n then err start_line "unterminated comment"
          else if src.[!i] = '\n' then (
            incr line;
            incr i)
          else if src.[!i] = '*' && peek 1 = Some '/' then (
            decr depth;
            i := !i + 2)
          else if src.[!i] = '/' && peek 1 = Some '*' then (
            incr depth;
            i := !i + 2)
          else incr i
        done
    | '(' ->
        push LPAREN;
        incr i
    | ')' ->
        push RPAREN;
        incr i
    | ',' ->
        push COMMA;
        incr i
    | '.' ->
        push DOT;
        incr i
    | '=' ->
        push EQ;
        incr i
    | '!' when peek 1 = Some '=' ->
        push NEQ;
        i := !i + 2
    | '!' ->
        push BANG;
        incr i
    | ':' when peek 1 = Some '-' ->
        push ARROW;
        i := !i + 2
    | ':' ->
        push COLON;
        incr i
    | '<' when peek 1 = Some '-' ->
        push ARROW;
        i := !i + 2
    | '?' when peek 1 = Some '-' ->
        push QUERY;
        i := !i + 2
    | '?' when (match peek 1 with Some c -> is_ident_start c | None -> false)
      ->
        incr i;
        let start = !i in
        while !i < n && is_ident_char src.[!i] do
          incr i
        done;
        push (QVAR (String.sub src start (!i - start)))
    | '"' ->
        let start_line = !line in
        let buf = Buffer.create 16 in
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          let c = src.[!i] in
          if c = '"' then (
            closed := true;
            incr i)
          else if c = '\\' && !i + 1 < n then (
            (match src.[!i + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | c -> Buffer.add_char buf c);
            i := !i + 2)
          else (
            if c = '\n' then incr line;
            Buffer.add_char buf c;
            incr i)
        done;
        if not !closed then err start_line "unterminated string literal";
        push (STRING (Buffer.contents buf))
    | '\'' ->
        let start_line = !line in
        let buf = Buffer.create 16 in
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          let c = src.[!i] in
          if c = '\'' then (
            closed := true;
            incr i)
          else (
            if c = '\n' then incr line;
            Buffer.add_char buf c;
            incr i)
        done;
        if not !closed then err start_line "unterminated quoted symbol";
        push (QSYM (Buffer.contents buf))
    | c when is_digit c || (c = '-' && (match peek 1 with
                                        | Some d -> is_digit d
                                        | None -> false)) ->
        let start = !i in
        if c = '-' then incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        push (INT (int_of_string (String.sub src start (!i - start))))
    | c when is_ident_start c ->
        let start = !i in
        while !i < n && is_ident_char src.[!i] do
          incr i
        done;
        let s = String.sub src start (!i - start) in
        push
          (match s with
          | "not" -> KW_NOT
          | "forall" -> KW_FORALL
          | "bottom" -> KW_BOTTOM
          | _ -> IDENT s)
    | c -> err !line "unexpected character %C" c);
    ()
  done;
  push EOF;
  List.rev !toks

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | QVAR s -> Printf.sprintf "variable ?%s" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string %S" s
  | QSYM s -> Printf.sprintf "symbol '%s'" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | ARROW -> ":-"
  | QUERY -> "?-"
  | BANG -> "!"
  | EQ -> "="
  | NEQ -> "!="
  | COLON -> ":"
  | KW_NOT -> "not"
  | KW_FORALL -> "forall"
  | KW_BOTTOM -> "bottom"
  | EOF -> "end of input"
