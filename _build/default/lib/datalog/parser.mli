(** Recursive-descent parser for the family's surface syntax.

    Grammar (superset of every variant; engines validate their fragment
    with the [Ast.check_*] functions):

    {v
    program   ::= statement*
    statement ::= "?-" atom "." | rule "."
    rule      ::= heads (( ":-" | "<-" ) body?)?
    heads     ::= hlit ("," hlit)*
    hlit      ::= "!" atom | "not" atom | "bottom" | atom
    body      ::= "forall" vars ":" blits | blits
    blits     ::= blit ("," blit)*
    blit      ::= "!" atom | "not" atom
                | term "=" term | term "!=" term | atom
    atom      ::= IDENT [ "(" terms? ")" ]
    term      ::= "?"IDENT | INT | STRING | 'SYMBOL'
                | IDENT   (uppercase/underscore initial: variable;
                           otherwise: symbolic constant)
    v}

    Facts are body-less rules with constant arguments. *)

type parsed = {
  program : Ast.program;
  queries : Ast.atom list;  (** [?-] directives, in order *)
}

exception Parse_error of int * string
(** [(line, message)] *)

(** [parse src] parses a whole source text.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)
val parse : string -> parsed

(** [parse_program src] parses and requires no [?-] directives. *)
val parse_program : string -> Ast.program

(** [parse_rule src] parses a single rule (final dot optional). *)
val parse_rule : string -> Ast.rule

(** [parse_atom src] parses a single atom, e.g. a query. *)
val parse_atom : string -> Ast.atom
