(** Hand-written lexer for the Datalog surface syntax.

    Tokens cover the whole family's syntax: rules, negation ([!] or [not]),
    retraction heads, [bottom] (⊥), (in)equality, [forall], and the [?-]
    query directive. Comments: [%] or [//] to end of line, and nestable
    [/* ... */]. *)

type token =
  | IDENT of string   (** identifier; case decides var/constant in terms *)
  | QVAR of string    (** [?x] — explicit variable *)
  | INT of int
  | STRING of string  (** double-quoted string constant *)
  | QSYM of string    (** single-quoted symbolic constant *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | ARROW             (** [:-] or [<-] *)
  | QUERY             (** [?-] *)
  | BANG              (** [!] *)
  | EQ                (** [=] *)
  | NEQ               (** [!=] *)
  | COLON             (** [:] (after [forall] binders) *)
  | KW_NOT
  | KW_FORALL
  | KW_BOTTOM
  | EOF

exception Lex_error of int * string
(** [(line, message)] *)

(** [tokenize src] lexes a whole source text. The result always ends in
    [EOF]. Each token is paired with its 1-based line number.
    @raise Lex_error on unknown characters or unterminated literals. *)
val tokenize : string -> (token * int) list

val token_to_string : token -> string
