(** Abstract syntax shared by the whole language family.

    One rule type covers every variant in the paper; each engine validates
    the fragment it implements via the [check_*] functions:

    - {b Datalog} (§3.1): single positive head literal, positive body.
    - {b Datalog¬} (§3.2–4.1): negative body literals allowed.
    - {b Datalog¬¬} (§4.2): negative head literals (retractions) allowed.
    - {b Datalog¬new} (§4.3): head-only variables allowed (value invention).
    - {b N-Datalog¬(¬)} (§5.1, Definition 5.1): multi-literal heads and
      (in)equality literals in bodies.
    - {b N-Datalog¬⊥} (§5.2): the inconsistency symbol ⊥ in heads. *)

open Relational

type term = Var of string | Cst of Value.t

type atom = { pred : string; args : term list }

(** Head literals. *)
type hlit =
  | HPos of atom  (** assert a fact *)
  | HNeg of atom  (** retract a fact (Datalog¬¬ / N-Datalog¬¬) *)
  | HBottom  (** ⊥: abandon the computation (N-Datalog¬⊥) *)

(** Body literals. *)
type blit =
  | BPos of atom  (** [R(u)] *)
  | BNeg of atom  (** [¬R(u)] *)
  | BEq of term * term  (** [s = t] (N-Datalog) *)
  | BNeq of term * term  (** [s ≠ t] (N-Datalog) *)

type rule = {
  head : hlit list;  (** nonempty; singleton for deterministic variants *)
  body : blit list;
  forall : string list;
      (** universally quantified body variables (N-Datalog¬∀, §5.2);
          empty for every other variant *)
}

type program = rule list

(** {1 Construction helpers} *)

val var : string -> term
val cst : Value.t -> term

(** [sym s] is [Cst (Sym s)] — the common case in examples. *)
val sym : string -> term

val int : int -> term
val atom : string -> term list -> atom

(** [rule head body] builds a deterministic rule with a single positive
    head. *)
val rule : atom -> blit list -> rule

(** [fact a] is a body-less rule. *)
val fact : atom -> rule

(** [nrule heads body] builds a (possibly multi-head) rule. *)
val nrule : hlit list -> blit list -> rule

(** {1 Structural queries} *)

val atom_of_hlit : hlit -> atom option

(** [head_preds p] / [body_preds p]: predicate names occurring in heads /
    bodies. *)
val head_preds : program -> string list

val body_preds : program -> string list

(** [idb p] is the set of intensional predicates (those in some head);
    [edb p] the extensional ones (in bodies only). Sorted, distinct. *)
val idb : program -> string list

val edb : program -> string list

(** [preds p] is all predicates of [sch(P)]. *)
val preds : program -> string list

(** [adom p] is the set of constants occurring in [p] (the paper's
    [adom(P)]). *)
val adom : program -> Value.t list

(** [rule_vars r] lists the variables of a rule, first occurrence order. *)
val rule_vars : rule -> string list

(** [body_vars r] lists variables occurring in any body literal (or bound
    by the rule's ∀-quantifier). *)
val body_vars : rule -> string list

(** [head_only_vars r] lists variables occurring in the head but in no body
    literal — the invented variables of Datalog¬new (and an error in every
    other variant). [forall]-quantified variables count as body binders. *)
val head_only_vars : rule -> string list

(** [positive_body_vars r] lists variables bound by a positive body atom or
    by an equality with a constant. *)
val positive_body_vars : rule -> string list

(** {1 Arity checking} *)

(** [infer_schema p] computes predicate arities used in [p].
    @raise Check_error on inconsistent arities. *)
val infer_schema : program -> Schema.t

(** {1 Fragment validation}

    Each check raises {!Check_error} with a readable message naming the rule
    and the violated condition. *)

exception Check_error of string

(** Safety in the paper's sense (Definitions 3.1 and §3.2): every head
    variable occurs in {e some} body literal, positive or negative.
    Variables not bound by a positive atom range over [adom(P, K)] at
    evaluation time. *)
val check_safe : rule -> unit

(** Pure Datalog: single positive head, positive body atoms only. *)
val check_datalog : program -> unit

(** Datalog¬: single positive head, body negation allowed, safe. *)
val check_datalog_neg : program -> unit

(** Datalog¬¬: single (possibly negative) head, safe. *)
val check_datalog_negneg : program -> unit

(** Datalog¬new: single positive head; body as Datalog¬; head-only
    variables permitted (they are the invented ones). *)
val check_invent : program -> unit

(** N-Datalog¬¬ (Definition 5.1): multi-literal heads, equalities in
    bodies; every head variable positively bound in the body; no ⊥. *)
val check_ndatalog : program -> unit

(** N-Datalog¬: as [check_ndatalog] but no negative head literals. *)
val check_ndatalog_pos_heads : program -> unit

(** N-Datalog¬⊥: as [check_ndatalog] plus ⊥ heads allowed. *)
val check_ndatalog_bottom : program -> unit

(** N-Datalog¬∀: positive heads, [forall] quantifiers allowed. *)
val check_ndatalog_forall : program -> unit

(** The whole nondeterministic superset: multi-literal heads, retraction
    heads, ⊥, ∀ and (in)equalities all allowed (the union of the N-Datalog
    fragments — what a front end should accept before dispatching). *)
val check_ndatalog_any : program -> unit

(** [is_stratifiable_syntax p]: true iff no head literal is negative, no ⊥,
    single heads — i.e. [p] is plain Datalog¬ syntax. *)
val is_datalog_neg_syntax : program -> bool

(** {1 Substitution} *)

type subst = (string * Value.t) list

val apply_term : subst -> term -> Value.t option

(** [ground_atom s a] instantiates an atom; @raise Check_error if a variable
    is unbound. *)
val ground_atom : subst -> atom -> string * Tuple.t
