type edge = { src : string; dst : string; negative : bool }

let edges p =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let heads =
        List.filter_map
          (fun h -> Option.map (fun a -> a.Ast.pred) (Ast.atom_of_hlit h))
          r.Ast.head
      in
      List.iter
        (fun dst ->
          List.iter
            (fun l ->
              match l with
              | Ast.BPos a ->
                  Hashtbl.replace tbl (a.Ast.pred, dst, false) ()
              | Ast.BNeg a -> Hashtbl.replace tbl (a.Ast.pred, dst, true) ()
              | Ast.BEq _ | Ast.BNeq _ -> ())
            r.Ast.body)
        heads)
    p;
  Hashtbl.fold
    (fun (src, dst, negative) () acc -> { src; dst; negative } :: acc)
    tbl []
  |> List.sort compare

(* Tarjan's strongly connected components. *)
let sccs p =
  let nodes = Ast.preds p in
  let es = edges p in
  let succs n =
    List.filter_map (fun e -> if e.src = n then Some e.dst else None) es
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.add index v !counter;
    Hashtbl.add lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then (
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w)))
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then (
      let comp = ref [] in
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            comp := w :: !comp;
            if w = v then continue := false
      done;
      components := List.sort String.compare !comp :: !components)
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* Tarjan emits components in reverse topological order of the
     condensation (a component is finished only after everything reachable
     from it); since edges point body -> head, reversing gives
     dependencies-first order. *)
  !components

let component_of p q =
  List.find_opt (fun c -> List.mem q c) (sccs p)

let recursive_with p a b =
  match component_of p a with Some c -> List.mem b c | None -> false

let negative_in_cycle p =
  let comps = sccs p in
  let comp_of = Hashtbl.create 16 in
  List.iteri (fun i c -> List.iter (fun n -> Hashtbl.add comp_of n i) c) comps;
  List.find_opt
    (fun e ->
      e.negative
      && Hashtbl.find_opt comp_of e.src = Hashtbl.find_opt comp_of e.dst
      && Hashtbl.mem comp_of e.src)
    (edges p)

let pp_dot ppf p =
  Format.fprintf ppf "digraph deps {@\n";
  List.iter (fun n -> Format.fprintf ppf "  %S;@\n" n) (Ast.preds p);
  List.iter
    (fun e ->
      Format.fprintf ppf "  %S -> %S%s;@\n" e.src e.dst
        (if e.negative then " [style=dashed,label=\"\xc2\xac\"]" else ""))
    (edges p);
  Format.fprintf ppf "}"
