open Relational

type result = { instance : Instance.t; stages : int }

let eval p inst =
  Ast.check_datalog p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  let rec loop current stages =
    let derived = Eval_util.consequences prepared current ~dom in
    let next = Instance.union current derived in
    if Instance.equal next current then { instance = current; stages }
    else loop next (stages + 1)
  in
  loop inst 0

let answer p inst pred = Instance.find pred (eval p inst).instance
