open Relational

type outcome =
  | Fixpoint of { instance : Instance.t; stages : int; invented : int }
  | Out_of_fuel of { instance : Instance.t; stages : int; invented : int }

(* A canonical key identifying one body instantiation of one rule, used to
   guarantee single firing. *)
let firing_key rule_idx subst =
  (rule_idx, List.sort compare subst)

let run ?(max_stages = 10_000) p inst =
  Ast.check_invent p;
  let gen = Value.Gen.create () in
  let prepared =
    List.mapi (fun i r -> (i, r, Matcher.prepare r, Ast.head_only_vars r)) p
  in
  let fired = Hashtbl.create 256 in
  let program_consts = Ast.adom p in
  let rec loop current stages =
    if stages >= max_stages then
      Out_of_fuel
        { instance = current; stages; invented = Value.Gen.count gen }
    else
      (* the active domain grows as values are invented *)
      let dom =
        let module VSet = Set.Make (Value) in
        VSet.elements
          (VSet.union
             (VSet.of_list program_consts)
             (VSet.of_list (Instance.adom current)))
      in
      let db = Matcher.Db.of_instance current in
      let additions = ref [] in
      List.iter
        (fun (i, rule, plan, new_vars) ->
          let substs = Matcher.run ~dom plan db in
          List.iter
            (fun subst ->
              let key = firing_key i subst in
              if not (Hashtbl.mem fired key) then (
                Hashtbl.add fired key ();
                let subst =
                  List.fold_left
                    (fun s x -> (x, Value.Gen.fresh gen) :: s)
                    subst new_vars
                in
                let _, facts =
                  Matcher.instantiate_heads subst rule.Ast.head
                in
                additions := facts @ !additions))
            substs)
        prepared;
      let next =
        List.fold_left
          (fun acc (pos, pr, t) ->
            if pos then Instance.add_fact pr t acc else acc)
          current !additions
      in
      if Instance.equal next current then
        Fixpoint { instance = current; stages; invented = Value.Gen.count gen }
      else loop next (stages + 1)
  in
  loop inst 0

let eval ?max_stages p inst =
  match run ?max_stages p inst with
  | Fixpoint { instance; _ } -> instance
  | Out_of_fuel { stages; _ } ->
      failwith
        (Printf.sprintf
           "Datalog\xc2\xacnew: no fixpoint within %d stages (the language is \
            Turing-complete; supply more fuel if the program terminates)"
           stages)

let answer ?max_stages p inst pred =
  let r = Instance.find pred (eval ?max_stages p inst) in
  Relation.filter (fun t -> not (Tuple.exists Value.is_invented t)) r

let answer_exn ?max_stages p inst pred =
  let r = Instance.find pred (eval ?max_stages p inst) in
  if Relation.exists (fun t -> Tuple.exists Value.is_invented t) r then
    failwith
      (Printf.sprintf
         "Datalog\xc2\xacnew: answer relation %s contains invented values" pred)
  else r
