open Relational

module Db = struct
  (* Secondary indexes are memoized per (predicate, constrained positions):
     a hash table from the value vector at those positions to the matching
     tuples. *)
  type t = {
    inst : Instance.t;
    indexes : (string * int list, (Value.t list, Tuple.t list) Hashtbl.t) Hashtbl.t;
  }

  let of_instance inst = { inst; indexes = Hashtbl.create 32 }
  let relation db p = Instance.find p db.inst
  let mem db p tup = Instance.mem_fact p tup db.inst

  let index db p positions =
    let key = (p, positions) in
    match Hashtbl.find_opt db.indexes key with
    | Some ix -> ix
    | None ->
        let ix = Hashtbl.create 64 in
        Relation.iter
          (fun t ->
            let k = List.map (fun i -> Tuple.get t i) positions in
            Hashtbl.replace ix k
              (t :: (try Hashtbl.find ix k with Not_found -> [])))
          (relation db p);
        Hashtbl.add db.indexes key ix;
        ix

  let lookup db p bindings =
    match bindings with
    | [] -> Relation.to_list (relation db p)
    | _ ->
        let bindings =
          List.sort (fun (i, _) (j, _) -> Int.compare i j) bindings
        in
        let positions = List.map fst bindings in
        let key = List.map snd bindings in
        let ix = index db p positions in
        Option.value (Hashtbl.find_opt ix key) ~default:[]
end

(* ------------------------------------------------------------------ *)

type step =
  | SAtom of Ast.atom  (** join with a stored relation *)
  | SDomain of string  (** enumerate a variable over the active domain *)

type prepared = {
  rule : Ast.rule;
  steps : step list;  (** join plan: atoms then leftover domain vars *)
  filters : Ast.blit list;  (** negatives and (in)equalities *)
  forall : string list;
}

let atom_vars (a : Ast.atom) =
  List.filter_map
    (function Ast.Var x -> Some x | Ast.Cst _ -> None)
    a.Ast.args

let prepare (rule : Ast.rule) =
  let pos_atoms =
    List.filter_map (function Ast.BPos a -> Some a | _ -> None) rule.Ast.body
  in
  let filters =
    List.filter (function Ast.BPos _ -> false | _ -> true) rule.Ast.body
  in
  (* greedy ordering: repeatedly pick the atom sharing the most variables
     with the already-bound set; tie-break on fewer new variables, then on
     original position (stable). *)
  let module SSet = Set.Make (String) in
  let rec order bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let score a =
          let vs = atom_vars a in
          let b = List.length (List.filter (fun v -> SSet.mem v bound) vs) in
          let fresh =
            List.length
              (List.sort_uniq String.compare
                 (List.filter (fun v -> not (SSet.mem v bound)) vs))
          in
          (b, -fresh)
        in
        let best =
          List.fold_left
            (fun best a ->
              match best with
              | None -> Some (a, score a)
              | Some (_, sb) when score a > sb -> Some (a, score a)
              | some -> some)
            None remaining
        in
        let a, _ = Option.get best in
        let remaining = List.filter (fun x -> x != a) remaining in
        let bound =
          List.fold_left (fun s v -> SSet.add v s) bound (atom_vars a)
        in
        order bound remaining (SAtom a :: acc)
  in
  let atom_steps = order SSet.empty pos_atoms [] in
  let bound_by_atoms =
    List.concat_map (function SAtom a -> atom_vars a | _ -> []) atom_steps
  in
  (* body variables not bound by any positive atom range over the domain
     (paper: instantiations valuate into adom(P, K)); ∀-variables are
     handled separately, and head-only variables are never enumerated —
     they are either rejected by the safety checks or freshly invented
     (Datalog¬new). *)
  let needed =
    Ast.body_vars rule
    |> List.filter (fun v ->
           (not (List.mem v bound_by_atoms))
           && not (List.mem v rule.Ast.forall))
  in
  { rule;
    steps = atom_steps @ List.map (fun v -> SDomain v) needed;
    filters;
    forall = rule.Ast.forall }

(* ------------------------------------------------------------------ *)

let term_value subst = function
  | Ast.Cst v -> Some v
  | Ast.Var x -> List.assoc_opt x subst

let check_filter ?neg_db db subst = function
  | Ast.BNeg a ->
      let vs = atom_vars a in
      if List.for_all (fun v -> List.assoc_opt v subst <> None) vs then
        let ndb = Option.value neg_db ~default:db in
        let _, tup = Ast.ground_atom subst a in
        Some (not (Db.mem ndb a.Ast.pred tup))
      else None
  | Ast.BEq (s, t) -> (
      match (term_value subst s, term_value subst t) with
      | Some a, Some b -> Some (Value.equal a b)
      | _ -> None)
  | Ast.BNeq (s, t) -> (
      match (term_value subst s, term_value subst t) with
      | Some a, Some b -> Some (not (Value.equal a b))
      | _ -> None)
  | Ast.BPos a ->
      let vs = atom_vars a in
      if List.for_all (fun v -> List.assoc_opt v subst <> None) vs then
        let _, tup = Ast.ground_atom subst a in
        Some (Db.mem db a.Ast.pred tup)
      else None

(* Apply all filters decidable under [subst]; returns [None] when some
   filter fails, otherwise the list of still-pending filters. *)
let apply_filters ?neg_db db subst filters =
  let rec go pending = function
    | [] -> Some (List.rev pending)
    | f :: rest -> (
        match check_filter ?neg_db db subst f with
        | Some true -> go pending rest
        | Some false -> None
        | None -> go (f :: pending) rest)
  in
  go [] filters

let unify_atom subst (a : Ast.atom) (tup : Tuple.t) =
  let rec go subst i = function
    | [] -> Some subst
    | Ast.Cst v :: rest ->
        if Value.equal v (Tuple.get tup i) then go subst (i + 1) rest else None
    | Ast.Var x :: rest -> (
        let v = Tuple.get tup i in
        match List.assoc_opt x subst with
        | Some w -> if Value.equal v w then go subst (i + 1) rest else None
        | None -> go ((x, v) :: subst) (i + 1) rest)
  in
  go subst 0 a.Ast.args

let bound_positions subst (a : Ast.atom) =
  List.filteri (fun _ o -> o <> None)
    (List.mapi
       (fun i t ->
         match term_value subst t with Some v -> Some (i, v) | None -> None)
       a.Ast.args)
  |> List.filter_map Fun.id

let run ?delta ?dom ?neg_db prepared db =
  let need_dom =
    List.exists (function SDomain _ -> true | _ -> false) prepared.steps
    || prepared.forall <> []
  in
  (if need_dom && dom = None then
     invalid_arg
       "Matcher.run: rule has domain-bound or \xe2\x88\x80 variables; supply ~dom");
  let dom = Option.value dom ~default:[] in
  let results = ref [] in
  (* [delta_slot]: index (into atom steps) of the occurrence currently
     restricted to the delta relation; -1 means none. *)
  let rec go delta_slot step_idx steps subst filters =
    match steps with
    | [] ->
        if prepared.forall <> [] then (
          (* ∀-rules: pending filters may mention ∀-variables;
             check_forall re-evaluates the whole body over the domain *)
          if check_forall subst filters then results := subst :: !results)
        else (
          (* all join/domain steps done: any still-pending filters are
             fully ground (e.g. a rule with no positive atoms and constant
             arguments) and must be checked now *)
          match apply_filters ?neg_db db subst filters with
          | Some [] -> results := subst :: !results
          | Some _ | None -> ())
    | SAtom a :: rest ->
        let candidates =
          if step_idx = delta_slot then
            let drel = match delta with Some (_, r) -> r | None -> Relation.empty in
            List.filter
              (fun t -> Tuple.arity t = List.length a.Ast.args)
              (Relation.to_list drel)
          else Db.lookup db a.Ast.pred (bound_positions subst a)
        in
        List.iter
          (fun tup ->
            match unify_atom subst a tup with
            | None -> ()
            | Some subst -> (
                match apply_filters ?neg_db db subst filters with
                | None -> ()
                | Some pending ->
                    go delta_slot (step_idx + 1) rest subst pending))
          candidates
    | SDomain x :: rest ->
        List.iter
          (fun v ->
            let subst = (x, v) :: subst in
            match apply_filters ?neg_db db subst filters with
            | None -> ()
            | Some pending -> go delta_slot (step_idx + 1) rest subst pending)
          dom
  and check_forall subst pending =
    (* All body literals must hold for every valuation of the ∀-variables
       over the domain. Literals not mentioning ∀-variables were already
       enforced (they are fully bound by now, [pending] only retains ∀
       ones), but re-checking the whole body keeps this obviously
       correct. *)
    ignore pending;
    let rec enum subst = function
      | [] ->
          List.for_all
            (fun l ->
              match check_filter ?neg_db db subst l with
              | Some b -> b
              | None -> false)
            prepared.rule.Ast.body
      | x :: rest ->
          List.for_all (fun v -> enum ((x, v) :: subst) rest) dom
    in
    enum subst prepared.forall
  in
  (match delta with
  | None -> go (-1) 0 prepared.steps [] prepared.filters
  | Some (pred, _) ->
      (* one pass per positive occurrence of [pred] *)
      List.iteri
        (fun i step ->
          match step with
          | SAtom a when a.Ast.pred = pred ->
              go i 0 prepared.steps [] prepared.filters
          | _ -> ())
        prepared.steps);
  (* Deduplicate: different derivations can yield the same substitution
     (e.g. via the delta passes, or different ∀-witnesses). Restrict to
     the rule variables that matter — ∀-variables are not part of the
     firing. *)
  let keep =
    List.filter
      (fun v -> not (List.mem v prepared.forall))
      (Ast.rule_vars prepared.rule)
  in
  let canon subst =
    List.sort compare (List.filter (fun (x, _) -> List.mem x keep) subst)
  in
  List.sort_uniq compare (List.map canon !results)

let satisfies db subst blits =
  List.for_all
    (fun l ->
      match check_filter db subst l with
      | Some b -> b
      | None -> raise (Ast.Check_error "Matcher.satisfies: unbound variable"))
    blits

let instantiate_heads subst heads =
  let bottom = ref false in
  let facts =
    List.filter_map
      (fun h ->
        match h with
        | Ast.HBottom ->
            bottom := true;
            None
        | Ast.HPos a ->
            let p, t = Ast.ground_atom subst a in
            Some (true, p, t)
        | Ast.HNeg a ->
            let p, t = Ast.ground_atom subst a in
            Some (false, p, t))
      heads
  in
  (!bottom, facts)
