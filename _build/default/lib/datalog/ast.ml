open Relational

type term = Var of string | Cst of Value.t
type atom = { pred : string; args : term list }
type hlit = HPos of atom | HNeg of atom | HBottom

type blit =
  | BPos of atom
  | BNeg of atom
  | BEq of term * term
  | BNeq of term * term

type rule = { head : hlit list; body : blit list; forall : string list }
type program = rule list

exception Check_error of string

let check_error fmt = Format.kasprintf (fun s -> raise (Check_error s)) fmt

(* --- construction ------------------------------------------------------- *)

let var x = Var x
let cst v = Cst v
let sym s = Cst (Value.Sym s)
let int n = Cst (Value.Int n)
let atom pred args = { pred; args }

let nrule heads body =
  if heads = [] then check_error "rule with empty head";
  { head = heads; body; forall = [] }

let rule h body = nrule [ HPos h ] body
let fact a = rule a []

(* --- structural queries -------------------------------------------------- *)

let atom_of_hlit = function HPos a | HNeg a -> Some a | HBottom -> None

let dedup_sorted xs = List.sort_uniq String.compare xs

let head_preds p =
  dedup_sorted
    (List.concat_map
       (fun r ->
         List.filter_map
           (fun h -> Option.map (fun a -> a.pred) (atom_of_hlit h))
           r.head)
       p)

let blit_atom = function BPos a | BNeg a -> Some a | BEq _ | BNeq _ -> None

let body_preds p =
  dedup_sorted
    (List.concat_map
       (fun r ->
         List.filter_map (fun l -> Option.map (fun a -> a.pred) (blit_atom l))
           r.body)
       p)

let idb = head_preds

let edb p =
  let heads = head_preds p in
  List.filter (fun q -> not (List.mem q heads)) (body_preds p)

let preds p = dedup_sorted (head_preds p @ body_preds p)

let adom p =
  let module VSet = Set.Make (Value) in
  let term_consts acc = function Cst v -> VSet.add v acc | Var _ -> acc in
  let atom_consts acc a = List.fold_left term_consts acc a.args in
  let hlit_consts acc = function
    | HPos a | HNeg a -> atom_consts acc a
    | HBottom -> acc
  in
  let blit_consts acc = function
    | BPos a | BNeg a -> atom_consts acc a
    | BEq (s, t) | BNeq (s, t) -> term_consts (term_consts acc s) t
  in
  let rule_consts acc r =
    let acc = List.fold_left hlit_consts acc r.head in
    List.fold_left blit_consts acc r.body
  in
  VSet.elements (List.fold_left rule_consts VSet.empty p)

let term_vars = function Var x -> [ x ] | Cst _ -> []
let atom_vars a = List.concat_map term_vars a.args

let hlit_vars = function
  | HPos a | HNeg a -> atom_vars a
  | HBottom -> []

let blit_vars = function
  | BPos a | BNeg a -> atom_vars a
  | BEq (s, t) | BNeq (s, t) -> term_vars s @ term_vars t

let first_occurrence_order xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else (
        Hashtbl.add seen x ();
        true))
    xs

let rule_vars r =
  first_occurrence_order
    (List.concat_map hlit_vars r.head @ List.concat_map blit_vars r.body)

let body_vars r =
  first_occurrence_order (List.concat_map blit_vars r.body @ r.forall)

let head_only_vars r =
  let body_vs =
    List.concat_map blit_vars r.body @ r.forall |> dedup_sorted
  in
  first_occurrence_order
    (List.filter
       (fun x -> not (List.mem x body_vs))
       (List.concat_map hlit_vars r.head))

let positive_body_vars r =
  let direct =
    List.concat_map
      (function
        | BPos a -> atom_vars a
        | BEq _ | BNeq _ | BNeg _ -> [])
      r.body
  in
  (* equality with a constant, or with an already-bound variable, also
     binds; iterate to fixpoint *)
  let bound = ref (dedup_sorted direct) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (function
        | BEq (Var x, Cst _) | BEq (Cst _, Var x) ->
            if not (List.mem x !bound) then (
              bound := x :: !bound;
              changed := true)
        | BEq (Var x, Var y) ->
            let bx = List.mem x !bound and by = List.mem y !bound in
            if bx && not by then (
              bound := y :: !bound;
              changed := true)
            else if by && not bx then (
              bound := x :: !bound;
              changed := true)
        | _ -> ())
      r.body
  done;
  !bound

(* --- arity inference ----------------------------------------------------- *)

let infer_schema p =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let note pred n =
    match Hashtbl.find_opt tbl pred with
    | None -> Hashtbl.add tbl pred n
    | Some m when m <> n ->
        check_error "predicate %s used with arities %d and %d" pred m n
    | Some _ -> ()
  in
  let note_atom a = note a.pred (List.length a.args) in
  List.iter
    (fun r ->
      List.iter
        (fun h -> Option.iter note_atom (atom_of_hlit h))
        r.head;
      List.iter (fun l -> Option.iter note_atom (blit_atom l)) r.body)
    p;
  Hashtbl.fold (fun name a acc -> Schema.add (Schema.rel name a) acc) tbl
    Schema.empty

(* --- fragment validation -------------------------------------------------- *)

let pp_rule_head ppf r =
  match r.head with
  | HPos a :: _ | HNeg a :: _ -> Format.pp_print_string ppf a.pred
  | HBottom :: _ -> Format.pp_print_string ppf "\xe2\x8a\xa5"
  | [] -> Format.pp_print_string ppf "<empty>"

let rule_id r = Format.asprintf "rule with head %a" pp_rule_head r

let check_safe r =
  let bound = body_vars r in
  List.iter
    (fun x ->
      if not (List.mem x bound) then
        check_error "%s: head variable %s does not occur in the body"
          (rule_id r) x)
    (first_occurrence_order (List.concat_map hlit_vars r.head))

let single_head r =
  match r.head with
  | [ h ] -> h
  | _ -> check_error "%s: deterministic variants require a single head literal"
           (rule_id r)

let no_forall r =
  if r.forall <> [] then
    check_error "%s: \xe2\x88\x80-quantifiers are only allowed in N-Datalog\xc2\xac\xe2\x88\x80"
      (rule_id r)

let no_eq r =
  List.iter
    (function
      | BEq _ | BNeq _ ->
          check_error
            "%s: (in)equality literals are only allowed in nondeterministic variants"
            (rule_id r)
      | _ -> ())
    r.body

let check_arities p = ignore (infer_schema p)

let check_datalog p =
  check_arities p;
  List.iter
    (fun r ->
      no_forall r;
      no_eq r;
      (match single_head r with
      | HPos _ -> ()
      | HNeg _ | HBottom ->
          check_error "%s: pure Datalog forbids negative heads" (rule_id r));
      List.iter
        (function
          | BNeg _ ->
              check_error "%s: pure Datalog forbids body negation" (rule_id r)
          | _ -> ())
        r.body;
      check_safe r)
    p

let check_datalog_neg p =
  check_arities p;
  List.iter
    (fun r ->
      no_forall r;
      no_eq r;
      (match single_head r with
      | HPos _ -> ()
      | HNeg _ | HBottom ->
          check_error "%s: Datalog\xc2\xac forbids negative heads" (rule_id r));
      check_safe r)
    p

let check_datalog_negneg p =
  check_arities p;
  List.iter
    (fun r ->
      no_forall r;
      no_eq r;
      (match single_head r with
      | HPos _ | HNeg _ -> ()
      | HBottom ->
          check_error "%s: \xe2\x8a\xa5 is only allowed in N-Datalog\xc2\xac\xe2\x8a\xa5"
            (rule_id r));
      check_safe r)
    p

let check_invent p =
  check_arities p;
  List.iter
    (fun r ->
      no_forall r;
      no_eq r;
      (match single_head r with
      | HPos _ -> ()
      | HNeg _ | HBottom ->
          check_error "%s: Datalog\xc2\xacnew forbids negative heads" (rule_id r));
      (* head variables either occur in the body or are invented *)
      ())
    p

let check_nd_common ~allow_bottom ~allow_neg_heads ~allow_forall p =
  check_arities p;
  List.iter
    (fun r ->
      if not allow_forall then no_forall r;
      if r.head = [] then check_error "rule with empty head";
      List.iter
        (function
          | HPos _ -> ()
          | HNeg _ when allow_neg_heads -> ()
          | HNeg a ->
              check_error "rule with head %s: negative heads not allowed here"
                a.pred
          | HBottom when allow_bottom -> ()
          | HBottom ->
              check_error
                "%s: \xe2\x8a\xa5 only allowed in N-Datalog\xc2\xac\xe2\x8a\xa5"
                (rule_id r))
        r.head;
      (* Definition 5.1: every head variable occurs positively bound in the
         body. forall-variables may not appear in the head. *)
      let bound = positive_body_vars r in
      List.iter
        (fun x ->
          if not (List.mem x bound) then
            check_error "%s: head variable %s not positively bound in body"
              (rule_id r) x)
        (first_occurrence_order (List.concat_map hlit_vars r.head));
      List.iter
        (fun x ->
          if List.mem x (List.concat_map hlit_vars r.head) then
            check_error "%s: \xe2\x88\x80-variable %s occurs in the head"
              (rule_id r) x)
        r.forall)
    p

let check_ndatalog p =
  check_nd_common ~allow_bottom:false ~allow_neg_heads:true ~allow_forall:false
    p

let check_ndatalog_pos_heads p =
  check_nd_common ~allow_bottom:false ~allow_neg_heads:false
    ~allow_forall:false p

let check_ndatalog_bottom p =
  check_nd_common ~allow_bottom:true ~allow_neg_heads:false ~allow_forall:false
    p

let check_ndatalog_forall p =
  check_nd_common ~allow_bottom:false ~allow_neg_heads:false ~allow_forall:true
    p

let check_ndatalog_any p =
  check_nd_common ~allow_bottom:true ~allow_neg_heads:true ~allow_forall:true p

let is_datalog_neg_syntax p =
  List.for_all
    (fun r ->
      r.forall = []
      && (match r.head with [ HPos _ ] -> true | _ -> false)
      && List.for_all
           (function BPos _ | BNeg _ -> true | BEq _ | BNeq _ -> false)
           r.body)
    p

(* --- substitution -------------------------------------------------------- *)

type subst = (string * Value.t) list

let apply_term s = function
  | Cst v -> Some v
  | Var x -> List.assoc_opt x s

let ground_atom s a =
  let args =
    List.map
      (fun t ->
        match apply_term s t with
        | Some v -> v
        | None ->
            check_error "ground_atom: unbound variable in atom %s" a.pred)
      a.args
  in
  (a.pred, Tuple.of_list args)
