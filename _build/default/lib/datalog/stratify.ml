type stratification = {
  strata : Ast.program list;
  stratum_of : (string * int) list;
}

let stratify p =
  Ast.check_datalog_neg p;
  match Depgraph.negative_in_cycle p with
  | Some e ->
      Error
        (Printf.sprintf
           "not stratifiable: %s depends negatively on %s inside a recursive \
            component"
           e.Depgraph.dst e.Depgraph.src)
  | None ->
      let comps = Depgraph.sccs p in
      let comp_of = Hashtbl.create 16 in
      List.iteri
        (fun i c -> List.iter (fun n -> Hashtbl.add comp_of n i) c)
        comps;
      let edges = Depgraph.edges p in
      (* components arrive dependencies-first; assign stratum as the max
         over incoming edges of (stratum of source component) + 1 for
         negative edges, 0 base. *)
      let n = List.length comps in
      let stratum = Array.make n 0 in
      List.iteri
        (fun i c ->
          let s =
            List.fold_left
              (fun acc e ->
                if List.mem e.Depgraph.dst c then
                  match Hashtbl.find_opt comp_of e.Depgraph.src with
                  | Some j when j <> i ->
                      max acc
                        (stratum.(j) + if e.Depgraph.negative then 1 else 0)
                  | _ -> acc
                else acc)
              0 edges
          in
          stratum.(i) <- s)
        comps;
      let stratum_of_pred q =
        match Hashtbl.find_opt comp_of q with
        | Some i -> stratum.(i)
        | None -> 0
      in
      let idb = Ast.idb p in
      let max_stratum =
        List.fold_left (fun acc q -> max acc (stratum_of_pred q)) 0 idb
      in
      let head_pred r =
        match r.Ast.head with
        | [ h ] -> (
            match Ast.atom_of_hlit h with
            | Some a -> a.Ast.pred
            | None -> assert false)
        | _ -> assert false
      in
      let strata =
        List.init (max_stratum + 1) (fun s ->
            List.filter (fun r -> stratum_of_pred (head_pred r) = s) p)
      in
      Ok
        {
          strata;
          stratum_of = List.map (fun q -> (q, stratum_of_pred q)) (Ast.preds p);
        }

let is_stratifiable p =
  match stratify p with Ok _ -> true | Error _ -> false

let is_semipositive p =
  let idb = Ast.idb p in
  List.for_all
    (fun r ->
      List.for_all
        (function
          | Ast.BNeg a -> not (List.mem a.Ast.pred idb)
          | _ -> true)
        r.Ast.body)
    p

let num_strata s = List.length (List.filter (fun st -> st <> []) s.strata)
