open Relational

let gl p inst context =
  Ast.check_datalog_neg p;
  let dom = Eval_util.program_dom p inst in
  let prepared = Eval_util.prepare p in
  let neg_db = Matcher.Db.of_instance context in
  let rec loop current =
    let db = Matcher.Db.of_instance current in
    let out = ref Instance.empty in
    List.iter
      (fun (rule, plan) ->
        let substs = Matcher.run ~dom ~neg_db plan db in
        List.iter
          (fun subst ->
            let _, facts = Matcher.instantiate_heads subst rule.Ast.head in
            List.iter
              (fun (pos, pr, t) ->
                if pos && not (Instance.mem_fact pr t current) then
                  out := Instance.add_fact pr t !out)
              facts)
          substs)
      (Eval_util.rules prepared);
    if Instance.total_facts !out = 0 then current
    else loop (Instance.union current !out)
  in
  loop inst

let is_stable p inst m = Instance.equal (gl p inst m) m

let models ?limit p inst =
  let wf = Wellfounded.eval p inst in
  let unknowns =
    Instance.fold
      (fun pred r acc ->
        Relation.fold (fun t acc -> (pred, t) :: acc) r acc)
      (Wellfounded.unknown wf) []
  in
  if List.length unknowns > 20 then
    failwith
      (Printf.sprintf "Stable.models: %d unknown facts, search too large"
         (List.length unknowns));
  let out = ref [] in
  let n = ref 0 in
  let reached_limit () =
    match limit with Some l -> !n >= l | None -> false
  in
  let rec branch candidate = function
    | [] ->
        if (not (reached_limit ())) && is_stable p inst candidate then (
          out := candidate :: !out;
          incr n)
    | (pred, t) :: rest ->
        if not (reached_limit ()) then (
          branch candidate rest;
          branch (Instance.add_fact pred t candidate) rest)
  in
  branch wf.Wellfounded.true_facts unknowns;
  List.rev !out

let count p inst = List.length (models p inst)
