(** Concrete-syntax printer for programs.

    Prints the same surface syntax {!Parser} reads, so that
    [Parser.parse_program (Format.asprintf "%a" Pretty.pp_program p)]
    round-trips (tested by property). Conventions:

    - variables print bare when they start with an uppercase letter or
      [_], and as [?x] otherwise;
    - symbolic constants print bare when they are lowercase identifiers,
      and single-quoted otherwise;
    - body negation prints as [!R(...)], head retraction likewise;
    - ⊥ prints as [bottom]; ∀-rules print as
      [h :- forall X, Y : lits]. *)

open Relational

val pp_term : Format.formatter -> Ast.term -> unit
val pp_atom : Format.formatter -> Ast.atom -> unit
val pp_hlit : Format.formatter -> Ast.hlit -> unit
val pp_blit : Format.formatter -> Ast.blit -> unit
val pp_rule : Format.formatter -> Ast.rule -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string
val rule_to_string : Ast.rule -> string

(** [pp_fact ppf (pred, tuple)] prints a ground fact in fact-file syntax. *)
val pp_fact : Format.formatter -> string * Tuple.t -> unit
