(** Stratification of Datalog¬ programs (§3.2).

    A stratification partitions the idb predicates into strata such that a
    rule's head stratum is ≥ the stratum of every positive body predicate
    and > the stratum of every negated idb body predicate. It exists iff
    no negative edge of the dependency graph lies on a cycle. *)

type stratification = {
  strata : Ast.program list;
      (** rules grouped by head stratum, lowest first; each stratum is
          itself a (semi-positive w.r.t. earlier strata) Datalog¬ program *)
  stratum_of : (string * int) list;
      (** stratum index per predicate; edb predicates get stratum 0 *)
}

(** [stratify p] computes a stratification.
    Returns [Error witness] with a human-readable explanation naming the
    negative cycle when [p] is unstratifiable.
    @raise Ast.Check_error if [p] is not Datalog¬ syntax. *)
val stratify : Ast.program -> (stratification, string) result

val is_stratifiable : Ast.program -> bool

(** [is_semipositive p]: negation is applied to edb predicates only
    (§4.5's semi-positive fragment). *)
val is_semipositive : Ast.program -> bool

(** [num_strata s] is the number of (non-empty) strata. *)
val num_strata : stratification -> int
