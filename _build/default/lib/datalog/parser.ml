open Relational

type parsed = { program : Ast.program; queries : Ast.atom list }

exception Parse_error of int * string

type state = { mutable toks : (Lexer.token * int) list }

let err line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let peek st =
  match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t

let peek2 st =
  match st.toks with _ :: t :: _ -> fst t | _ -> Lexer.EOF

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  let t, line = peek st in
  if t = tok then advance st
  else err line "expected %s, found %s" what (Lexer.token_to_string t)

let is_upper_start s =
  String.length s > 0
  && match s.[0] with 'A' .. 'Z' | '_' -> true | _ -> false

let parse_term st : Ast.term =
  let t, line = peek st in
  match t with
  | Lexer.QVAR x ->
      advance st;
      Ast.Var x
  | Lexer.INT n ->
      advance st;
      Ast.Cst (Value.Int n)
  | Lexer.STRING s ->
      advance st;
      Ast.Cst (Value.Str s)
  | Lexer.QSYM s ->
      advance st;
      Ast.Cst (Value.Sym s)
  | Lexer.IDENT s ->
      advance st;
      if is_upper_start s then Ast.Var s else Ast.Cst (Value.Sym s)
  | t -> err line "expected a term, found %s" (Lexer.token_to_string t)

let parse_atom_tail st name : Ast.atom =
  match fst (peek st) with
  | Lexer.LPAREN ->
      advance st;
      if fst (peek st) = Lexer.RPAREN then (
        advance st;
        Ast.atom name [])
      else
        let rec args acc =
          let t = parse_term st in
          match fst (peek st) with
          | Lexer.COMMA ->
              advance st;
              args (t :: acc)
          | _ -> List.rev (t :: acc)
        in
        let a = args [] in
        expect st Lexer.RPAREN ")";
        Ast.atom name a
  | _ -> Ast.atom name []

let parse_atom_st st : Ast.atom =
  let t, line = peek st in
  match t with
  | Lexer.IDENT name ->
      advance st;
      parse_atom_tail st name
  | t -> err line "expected an atom, found %s" (Lexer.token_to_string t)

(* A body literal: negated atom, (in)equality between terms, or atom.
   Disambiguation: if the next tokens form `term (=|!=) ...` we parse an
   equality; an IDENT followed by LPAREN is always an atom. *)
let parse_blit st : Ast.blit =
  let t, line = peek st in
  match t with
  | Lexer.BANG | Lexer.KW_NOT ->
      advance st;
      Ast.BNeg (parse_atom_st st)
  | Lexer.QVAR _ | Lexer.INT _ | Lexer.STRING _ | Lexer.QSYM _ ->
      let lhs = parse_term st in
      let t, line = peek st in
      (match t with
      | Lexer.EQ ->
          advance st;
          Ast.BEq (lhs, parse_term st)
      | Lexer.NEQ ->
          advance st;
          Ast.BNeq (lhs, parse_term st)
      | t ->
          err line "expected = or != after term, found %s"
            (Lexer.token_to_string t))
  | Lexer.IDENT name -> (
      match peek2 st with
      | Lexer.LPAREN ->
          advance st;
          Ast.BPos (parse_atom_tail st name)
      | Lexer.EQ ->
          advance st;
          advance st;
          let lhs =
            if is_upper_start name then Ast.Var name
            else Ast.Cst (Value.Sym name)
          in
          Ast.BEq (lhs, parse_term st)
      | Lexer.NEQ ->
          advance st;
          advance st;
          let lhs =
            if is_upper_start name then Ast.Var name
            else Ast.Cst (Value.Sym name)
          in
          Ast.BNeq (lhs, parse_term st)
      | _ ->
          advance st;
          Ast.BPos (Ast.atom name []))
  | t -> err line "expected a body literal, found %s" (Lexer.token_to_string t)

let parse_hlit st : Ast.hlit =
  let t, _line = peek st in
  match t with
  | Lexer.BANG | Lexer.KW_NOT ->
      advance st;
      Ast.HNeg (parse_atom_st st)
  | Lexer.KW_BOTTOM ->
      advance st;
      Ast.HBottom
  | _ -> Ast.HPos (parse_atom_st st)

let parse_var st : string =
  let t, line = peek st in
  match t with
  | Lexer.QVAR x ->
      advance st;
      x
  | Lexer.IDENT s when is_upper_start s ->
      advance st;
      s
  | t -> err line "expected a variable, found %s" (Lexer.token_to_string t)

let parse_body st : string list * Ast.blit list =
  let forall_vars =
    if fst (peek st) = Lexer.KW_FORALL then (
      advance st;
      let rec vars acc =
        let x = parse_var st in
        match fst (peek st) with
        | Lexer.COMMA ->
            advance st;
            vars (x :: acc)
        | _ -> List.rev (x :: acc)
      in
      let vs = vars [] in
      expect st Lexer.COLON ":";
      vs)
    else []
  in
  let rec blits acc =
    let l = parse_blit st in
    match fst (peek st) with
    | Lexer.COMMA ->
        advance st;
        blits (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  (forall_vars, blits [])

let parse_rule_st st : Ast.rule =
  let rec heads acc =
    let h = parse_hlit st in
    match fst (peek st) with
    | Lexer.COMMA ->
        advance st;
        heads (h :: acc)
    | _ -> List.rev (h :: acc)
  in
  let hs = heads [] in
  match fst (peek st) with
  | Lexer.ARROW ->
      advance st;
      (* empty body allowed: `delay :- .` is written just `delay.`, but we
         also accept an arrow immediately followed by the dot *)
      if fst (peek st) = Lexer.DOT then { Ast.head = hs; body = []; forall = [] }
      else
        let forall, body = parse_body st in
        { Ast.head = hs; body; forall }
  | _ -> { Ast.head = hs; body = []; forall = [] }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let rules = ref [] and queries = ref [] in
  let rec loop () =
    match peek st with
    | Lexer.EOF, _ -> ()
    | Lexer.QUERY, _ ->
        advance st;
        let a = parse_atom_st st in
        expect st Lexer.DOT ". after query";
        queries := a :: !queries;
        loop ()
    | _ ->
        let r = parse_rule_st st in
        expect st Lexer.DOT ". after rule";
        rules := r :: !rules;
        loop ()
  in
  loop ();
  { program = List.rev !rules; queries = List.rev !queries }

let parse_program src =
  let { program; queries } = parse src in
  (match queries with
  | [] -> ()
  | a :: _ ->
      raise
        (Parse_error
           (0, Printf.sprintf "unexpected ?- %s query directive" a.Ast.pred)));
  program

let parse_rule src =
  let st = { toks = Lexer.tokenize src } in
  let r = parse_rule_st st in
  if fst (peek st) = Lexer.DOT then advance st;
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, line -> err line "trailing input: %s" (Lexer.token_to_string t));
  r

let parse_atom src =
  let st = { toks = Lexer.tokenize src } in
  let a = parse_atom_st st in
  if fst (peek st) = Lexer.DOT then advance st;
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, line -> err line "trailing input: %s" (Lexer.token_to_string t));
  a
