open Relational

let is_lower_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let is_upper_ident s =
  String.length s > 0
  && (match s.[0] with 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let pp_value_term ppf (v : Value.t) =
  match v with
  | Value.Sym s when is_lower_ident s -> Format.pp_print_string ppf s
  | Value.Sym s -> Format.fprintf ppf "'%s'" s
  | Value.Int n -> Format.pp_print_int ppf n
  | Value.Str s -> Format.fprintf ppf "%S" s
  | Value.New n -> Format.fprintf ppf "'\xce\xbd%d'" n

let pp_term ppf (t : Ast.term) =
  match t with
  | Ast.Var x when is_upper_ident x -> Format.pp_print_string ppf x
  | Ast.Var x -> Format.fprintf ppf "?%s" x
  | Ast.Cst v -> pp_value_term ppf v

let pp_atom ppf (a : Ast.atom) =
  match a.Ast.args with
  | [] -> Format.fprintf ppf "%s()" a.Ast.pred
  | args ->
      Format.fprintf ppf "%s(%a)" a.Ast.pred
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_term)
        args

let pp_hlit ppf = function
  | Ast.HPos a -> pp_atom ppf a
  | Ast.HNeg a -> Format.fprintf ppf "!%a" pp_atom a
  | Ast.HBottom -> Format.pp_print_string ppf "bottom"

let pp_blit ppf = function
  | Ast.BPos a -> pp_atom ppf a
  | Ast.BNeg a -> Format.fprintf ppf "!%a" pp_atom a
  | Ast.BEq (s, t) -> Format.fprintf ppf "%a = %a" pp_term s pp_term t
  | Ast.BNeq (s, t) -> Format.fprintf ppf "%a != %a" pp_term s pp_term t

let pp_var_list ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf x -> pp_term ppf (Ast.Var x))
    ppf xs

let pp_rule ppf (r : Ast.rule) =
  let pp_heads ppf =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp_hlit ppf
  in
  let pp_body ppf =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp_blit ppf
  in
  match (r.Ast.body, r.Ast.forall) with
  | [], [] -> Format.fprintf ppf "%a." pp_heads r.Ast.head
  | body, [] ->
      Format.fprintf ppf "%a :- %a." pp_heads r.Ast.head pp_body body
  | body, vars ->
      Format.fprintf ppf "%a :- forall %a : %a." pp_heads r.Ast.head
        pp_var_list vars pp_body body

let pp_program ppf (p : Ast.program) =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    pp_rule ppf p

let program_to_string p = Format.asprintf "@[<v>%a@]" pp_program p
let rule_to_string r = Format.asprintf "%a" pp_rule r

let pp_fact ppf (pred, tup) =
  Format.fprintf ppf "%s(%a)." pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_value_term)
    (Tuple.to_list tup)
