lib/distributed/netlog.mli: Datalog Instance Relational
