lib/distributed/netlog.ml: Array Datalog Format Hashtbl Instance List Queue Random Relational Tuple Value
