(* Benchmark harness regenerating every evaluation artifact of the paper
   (see DESIGN.md §5 and EXPERIMENTS.md). One experiment per table/figure:

     e1  Figure 1: the expressiveness hierarchy, machine-checked
     e2  naive vs semi-naive evaluation (classic engine table)
     e3  Theorem 4.2 convergence: stratified = well-founded = inflationary
     e4  well-founded alternating fixpoint cost (win game scaled)
     e5  nondeterminism: 2^k orientations, poss/cert (§5)
     e6  while = Datalog¬¬ / fixpoint -> inflationary compilation (Thm 4.2)
     e7  order and expressiveness: evenness (Thm 4.7)
     e8  magic sets vs full semi-naive (§6)
     e9  Theorem 4.6: Turing completeness of Datalog¬new
     e10 stable models vs well-founded unknowns (§3.3)
     e11 ablation: delta loop vs naive loop (inflationary engine)
     e12 production-system conflict-resolution strategies
     e13 distributed evaluation and the CALM observation (§6)
     e14 monadic Datalog over trees: wrapper scaling (§6)
     e15 Datalog± restricted chase and certain answers (§6)
     e16 parallel evaluation: domain-pool jobs sweep on semi-naive TC
     e17 safe-range compilation: FO calculus and while, naive vs compiled
     e18 demand-driven compilation vs full materialization
     e19 operator-profiling overhead, disabled vs enabled
     e20 sharded exchange vs barrier merge (parallel semi-naive TC)
     e21 resident serve: incremental maintenance vs recompute-from-scratch
     e22 semiring annotations: Boolean guard, counting deletion, tropical

   `dune exec bench/main.exe` runs everything; pass experiment ids to
   select, or `bechamel` for the micro-benchmark kernels. *)
open Relational

(* --reps N: repeat each timed section N times and keep the fastest run
   (default 1). The recorded BENCH_engines.json numbers use --reps 3. *)
let reps = ref 1

(* Timing uses the observe layer's monotonic *wall* clock. [Sys.time]
   (the former source) is process-CPU time: under parallel domains it
   sums every worker's work, which would report a parallel run as slower
   than sequential even when the wall clock says otherwise. *)
let time f =
  let rec go best k =
    if k = 0 then best
    else
      let t0 = Observe.Trace.now () in
      let r = f () in
      let dt = Observe.Trace.now () -. t0 in
      let best =
        match best with Some (_, b) when b <= dt -> best | _ -> Some (r, dt)
      in
      go best (k - 1)
  in
  match go None (max 1 !reps) with Some (r, t) -> (r, t) | None -> assert false

let ms t = Printf.sprintf "%8.2f" (1000.0 *. t)

(* --- machine-readable timings (--json <file>) ----------------------- *)

(* Rows are appended by the experiments that feed the perf trajectory
   (e2, e8, e11) and dumped as a JSON array so future PRs can diff
   engine timings mechanically. Each row also carries a "metrics"
   object harvested from a second, untimed run under an enabled trace
   context (lib/observe): fixpoint rounds, max delta, index builds and
   memo hits — so a perf diff can tell algorithmic change apart from
   constant-factor change. *)
let json_rows : string list ref = ref []

let record ?(metrics = []) ?annot ~experiment ~case ~n ~engine ~wall_ms
    ~stages ~facts () =
  let metrics_json =
    match metrics with
    | [] -> ""
    | kvs ->
        Printf.sprintf ", \"metrics\": {%s}"
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) kvs))
  in
  (* semiring rows carry the annotation domain; datalog-bench-diff keys
     on it so e22's bool/count/minplus rows stay distinct *)
  let annot_json =
    match annot with
    | None -> ""
    | Some a -> Printf.sprintf ", \"annot\": %S" a
  in
  (* every row carries the machine/configuration context it was measured
     under: the job count in force and the detected core count — so
     datalog-bench-diff can tell a genuine regression apart from a sweep
     recorded on a different machine (or at a different -j) *)
  let meta_json =
    Printf.sprintf ", \"meta\": {\"jobs\": %d, \"cores\": %d}"
      (Parallel.Pool.jobs ())
      (Domain.recommended_domain_count ())
  in
  json_rows :=
    Printf.sprintf
      "{\"experiment\": %S, \"case\": %S, \"n\": %d, \"engine\": %S, \
       \"wall_ms\": %.3f, \"stages\": %d, \"facts\": %d%s%s%s}"
      experiment case n engine wall_ms stages facts annot_json metrics_json
      meta_json
    :: !json_rows

(* Run [f] once more under an enabled (sink-free) trace context — outside
   any timed section — and harvest the counters that characterise the
   evaluation: fixpoint shape and index behaviour (see lib/observe). *)
let metric_keys =
  [ "fixpoint.rounds"; "fixpoint.delta_max"; "db.index_builds";
    "db.index_memo_hits"; "par.domains"; "par.tasks"; "par.merge_ms";
    "par.exchange_ms"; "par.exchanged_tuples"; "par.shard_skew";
    "par.pool.fallbacks";
    "fo.plan.compiled"; "fo.plan.fallback_vars"; "fp.rounds"; "fp.fallback";
    "ra.join.probes"; "demand.rounds"; "demand.tuples_derived";
    "demand.plan.compiled"; "demand.plan.hits"; "demand.cache.hits";
    "demand.cache.misses"; "demand.evictions"; "magic.queries";
    "magic.rewritten_rules"; "dred.batches"; "dred.overdeleted";
    "dred.rederived"; "dred.cone_rounds"; "counting.batches";
    "counting.deleted"; "counting.touched"; "counting.closure";
    "counting.unfounded"; "counting.waves"; "annot.universe";
    "annot.derivations"; "annot.rounds"; "annot.forced"; "annot.infinite";
    "annot.par.fallbacks" ]

let collect_metrics f =
  let ctx = Observe.Trace.make ~sinks:[] () in
  ignore (f ctx);
  Observe.Trace.finish ctx;
  let counters =
    List.filter_map
      (fun k ->
        match Observe.Trace.counter ctx k with
        | 0 -> None
        | v -> Some (k, v))
      metric_keys
  in
  (* latency histograms ride along as p50/p99 (ns) so a perf diff can
     see distribution shifts, not just totals *)
  let hists =
    List.concat_map
      (fun (k, d) ->
        if d.Observe.Trace.n = 0 then []
        else
          [ (k ^ ".p50_ns", d.Observe.Trace.p50);
            (k ^ ".p99_ns", d.Observe.Trace.p99) ])
      (Observe.Trace.histograms ctx)
  in
  counters @ hists

let write_json path =
  let oc = open_out path in
  output_string oc "[\n  ";
  output_string oc (String.concat ",\n  " (List.rev !json_rows));
  output_string oc "\n]\n";
  close_out oc

let header title =
  Printf.printf "\n=== %s ===\n" title

let row fmt = Printf.printf fmt

let prog = Datalog.Parser.parse_program

(* shared programs *)
let tc_program =
  prog {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- G(X, Z), T(Z, Y).
  |}

let comp_tc_stratified =
  prog
    {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- G(X, Z), T(Z, Y).
    CT(X, Y) :- !T(X, Y).
  |}

let comp_tc_inflationary =
  prog
    {|
    T(X, Y) :- G(X, Y).
    T(X, Y) :- G(X, Z), T(Z, Y).
    old_T(X, Y) :- T(X, Y).
    old_T_except_final(X, Y) :- T(X, Y), T(X2, Z2), T(Z2, Y2), !T(X2, Y2).
    CT(X, Y) :- !T(X, Y), old_T(X2, Y2), !old_T_except_final(X2, Y2).
  |}

let win_program = prog "win(X) :- moves(X, Y), !win(Y)."
let orientation_program = prog "!G(X, Y) :- G(X, Y), G(Y, X)."

(* ---------------------------------------------------------------- E1 *)

let e1 () =
  header "E1 | Figure 1: relative expressive power, machine-checked";
  let checkmark b = if b then "yes" else "NO " in
  let edges = Graph_gen.random ~seed:3 8 14 in
  (* Datalog: TC is expressible; its complement is not (negation is
     syntactically absent). *)
  let tc_ok =
    Relation.equal
      (Datalog.Seminaive.answer tc_program edges "T")
      (Graph_gen.reference_tc (Instance.find "G" edges))
  in
  let datalog_rejects_negation =
    match Datalog.Ast.check_datalog comp_tc_stratified with
    | () -> false
    | exception Datalog.Ast.Check_error _ -> true
  in
  (* stratified: CT expressible; win program is out of the fragment *)
  let ct = Datalog.Stratified.answer comp_tc_stratified edges "CT" in
  let ct_ok = not (Relation.is_empty ct) in
  let win_unstratifiable = not (Datalog.Stratify.is_stratifiable win_program) in
  (* well-founded == inflationary(delay technique) == stratified on CT *)
  let wf_ct = Datalog.Wellfounded.answer comp_tc_stratified edges "CT" in
  let infl_ct = Datalog.Inflationary.answer comp_tc_inflationary edges "CT" in
  let convergence = Relation.equal ct wf_ct && Relation.equal ct infl_ct in
  (* well-founded handles win (3-valued) *)
  let wf_win = Datalog.Wellfounded.eval win_program (Graph_gen.paper_game ()) in
  let win_3valued = not (Datalog.Wellfounded.is_total wf_win) in
  (* Datalog¬¬ adds retraction: the flip-flop program diverges, which no
     inflationary program can do *)
  let flip =
    prog
      {|
      T(0) :- T(1).  !T(1) :- T(1).
      T(1) :- T(0).  !T(0) :- T(0).
    |}
  in
  let flip_diverges =
    match
      Datalog.Noninflationary.run flip
        (Instance.of_list [ ("T", [ [ Value.Int 0 ] ]) ])
    with
    | Datalog.Noninflationary.Diverged _ -> true
    | _ -> false
  in
  (* Datalog¬new: simulates a Turing machine; rejected by the
     invention-free checkers *)
  let tm_program = Turing.Tm_compile.compile Turing.Tm.parity in
  let tm_ok = Turing.Tm_compile.agrees_with_reference Turing.Tm.parity [ "1"; "1" ] in
  let invent_rejected_below =
    match Datalog.Ast.check_datalog_negneg tm_program with
    | () -> false
    | exception Datalog.Ast.Check_error _ -> true
  in
  row "  %-22s %-44s %s\n" "level" "witness" "holds";
  row "  %-22s %-44s %s\n" "Datalog" "computes TC; complement not expressible"
    (checkmark (tc_ok && datalog_rejects_negation));
  row "  %-22s %-44s %s\n" "stratified Datalog~"
    "computes complement-of-TC; rejects win" (checkmark (ct_ok && win_unstratifiable));
  row "  %-22s %-44s %s\n" "well-founded/infl."
    "= stratified on CT (Thm 4.2 convergence)" (checkmark convergence);
  row "  %-22s %-44s %s\n" "well-founded"
    "3-valued win on Example 3.2" (checkmark win_3valued);
  row "  %-22s %-44s %s\n" "Datalog~~"
    "flip-flop diverges (no inflationary analogue)" (checkmark flip_diverges);
  row "  %-22s %-44s %s\n" "Datalog~new"
    "simulates TMs; outside Datalog~~ syntax"
    (checkmark (tm_ok && invent_rejected_below));
  row "  (infl. < Datalog~~ iff ptime < pspace, Thm 4.5 — open)\n"

(* ---------------------------------------------------------------- E2 *)

let e2 () =
  header "E2 | naive vs semi-naive bottom-up evaluation (TC)";
  row "  %-16s %6s | %9s %9s %7s | %6s %6s\n" "graph" "|G|" "naive ms"
    "semi ms" "speedup" "stages" "|T|";
  List.iter
    (fun (name, n, inst) ->
      let g = Relation.cardinal (Instance.find "G" inst) in
      (* naive evaluation is O(rounds * full join) and takes minutes at
         n >= 1000; the sweep times semi-naive alone there *)
      let skip_naive = n >= 1000 in
      let rs, ts = time (fun () -> Datalog.Seminaive.eval tc_program inst) in
      let tfacts =
        Relation.cardinal (Instance.find "T" rs.Datalog.Seminaive.instance)
      in
      let semi_metrics =
        collect_metrics (fun trace ->
            Datalog.Seminaive.eval ~trace tc_program inst)
      in
      record ~experiment:"e2" ~case:name ~n ~engine:"seminaive"
        ~wall_ms:(1000. *. ts) ~stages:rs.Datalog.Seminaive.stages
        ~facts:tfacts ~metrics:semi_metrics ();
      if skip_naive then
        row "  %-16s %6d | %9s %s %7s | %6d %6d\n" name g "-" (ms ts) "-"
          rs.Datalog.Seminaive.stages tfacts
      else (
        let rn, tn = time (fun () -> Datalog.Naive.eval tc_program inst) in
        assert (
          Instance.equal rn.Datalog.Naive.instance
            rs.Datalog.Seminaive.instance);
        let naive_metrics =
          collect_metrics (fun trace ->
              Datalog.Naive.eval ~trace tc_program inst)
        in
        record ~experiment:"e2" ~case:name ~n ~engine:"naive"
          ~wall_ms:(1000. *. tn) ~stages:rn.Datalog.Naive.stages ~facts:tfacts
          ~metrics:naive_metrics ();
        row "  %-16s %6d | %s %s %6.1fx | %6d %6d\n" name g (ms tn) (ms ts)
          (tn /. ts) rs.Datalog.Seminaive.stages tfacts))
    [
      ("chain-40", 40, Graph_gen.chain 40);
      ("chain-80", 80, Graph_gen.chain 80);
      ("chain-160", 160, Graph_gen.chain 160);
      ("cycle-60", 60, Graph_gen.cycle 60);
      ("grid-10x10", 100, Graph_gen.grid 10 10);
      ("random-100x300", 100, Graph_gen.random ~seed:11 100 300);
      ("random-300x900", 300, Graph_gen.random ~seed:12 300 900);
      ("random-1000x5000", 1000, Graph_gen.random ~seed:13 1000 5000);
      ("tree-d8", 255, Graph_gen.binary_tree 8);
    ];
  row "  shape: semi-naive wins by a growing factor on long chains\n"

(* ---------------------------------------------------------------- E3 *)

let e3 () =
  header "E3 | Theorem 4.2: stratified = well-founded = inflationary";
  row "  %-16s | %9s %9s %9s | %s\n" "graph" "strat ms" "wf ms" "infl ms"
    "agree";
  List.iter
    (fun (name, inst) ->
      let s, ts =
        time (fun () -> Datalog.Stratified.answer comp_tc_stratified inst "CT")
      in
      let w, tw =
        time (fun () -> Datalog.Wellfounded.answer comp_tc_stratified inst "CT")
      in
      let i, ti =
        time (fun () ->
            Datalog.Inflationary.answer comp_tc_inflationary inst "CT")
      in
      row "  %-16s | %s %s %s | %b\n" name (ms ts) (ms tw) (ms ti)
        (Relation.equal s w && Relation.equal s i))
    [
      ("random-8x14", Graph_gen.random ~seed:5 8 14);
      ("random-10x20", Graph_gen.random ~seed:6 10 20);
      ("random-12x30", Graph_gen.random ~seed:7 12 30);
      ("chain-12", Graph_gen.chain 12);
    ];
  row "  shape: all agree; the inflationary encoding pays heavily for \
       detecting the\n  fixpoint from inside (the old_T_except_final triple \
       join of Example 4.3)\n"

(* ---------------------------------------------------------------- E4 *)

let e4 () =
  header "E4 | well-founded alternating fixpoint on the win game";
  row "  %-16s %6s | %6s %6s %7s %6s | %9s\n" "moves" "|E|" "true" "false"
    "unknown" "rounds" "time ms";
  List.iter
    (fun (name, n, inst) ->
      let res, t = time (fun () -> Datalog.Wellfounded.eval win_program inst) in
      let truth =
        Relation.cardinal (Instance.find "win" res.Datalog.Wellfounded.true_facts)
      in
      let poss =
        Relation.cardinal (Instance.find "win" res.Datalog.Wellfounded.possible)
      in
      let unknown = poss - truth in
      let falses = n - poss in
      row "  %-16s %6d | %6d %6d %7d %6d | %s\n" name
        (Relation.cardinal (Instance.find "moves" inst))
        truth falses unknown res.Datalog.Wellfounded.rounds (ms t))
    [
      (let i = Graph_gen.game_chain 20 in ("chain-20", 20, i));
      (let i = Graph_gen.game_chain 40 in ("chain-40", 40, i));
      (let n = 30 in
       ("random-30", n, Graph_gen.random ~name:"moves" ~seed:21 n (2 * n)));
      (let n = 60 in
       ("random-60", n, Graph_gen.random ~name:"moves" ~seed:22 n (2 * n)));
      (let n = 120 in
       ("random-120", n, Graph_gen.random ~name:"moves" ~seed:23 n (2 * n)));
    ];
  row "  shape: a handful of alternation rounds; cost grows with |moves|\n"

(* ---------------------------------------------------------------- E5 *)

let e5 () =
  header "E5 | nondeterminism: orientations of k two-cycles (2^k outcomes)";
  row "  %2s | %9s %8s | %10s | %6s %6s\n" "k" "terminals" "expected"
    "enum ms" "|poss|" "|cert|";
  List.iter
    (fun k ->
      let inst = Graph_gen.two_cycles k in
      let stats, t =
        time (fun () -> Nondet.Enumerate.effect orientation_program inst)
      in
      let poss = Nondet.Posscert.poss orientation_program inst in
      let cert = Nondet.Posscert.cert orientation_program inst in
      let terminals = List.length stats.Nondet.Enumerate.terminals in
      assert (terminals = 1 lsl k);
      row "  %2d | %9d %8d | %s | %6d %6d\n" k terminals (1 lsl k) (ms t)
        (Relation.cardinal (Instance.find "G" poss))
        (Relation.cardinal (Instance.find "G" cert)))
    [ 1; 2; 3; 4; 5; 6; 7 ];
  row "  shape: exponential effect relation; poss keeps all edges, cert none\n"

(* ---------------------------------------------------------------- E6 *)

let e6 () =
  header "E6 | while = fixpoint loops -> inflationary Datalog~ (Thm 4.2)";
  let good_query =
    {
      While_lang.Wast.formula =
        Fo.Forall
          ( [ "y" ],
            Fo.Implies
              ( Fo.Atom ("G", [ Fo.Var "y"; Fo.Var "x" ]),
                Fo.Atom ("good", [ Fo.Var "y" ]) ) );
      vars = [ "x" ];
    }
  in
  let while_prog =
    [ While_lang.Wast.While_change [ While_lang.Wast.Cumulate ("good", good_query) ] ]
  in
  row "  %-16s | %10s %12s | %s\n" "graph" "while ms" "compiled ms" "agree";
  List.iter
    (fun (name, inst) ->
      let w, tw =
        time (fun () -> While_lang.Weval.answer while_prog inst "good")
      in
      let c, tc =
        time (fun () ->
            While_lang.Compile.run_loop ~sources:[ ("G", 2) ] ~rel:"good"
              good_query inst)
      in
      row "  %-16s | %s %s    | %b\n" name (ms tw) (ms tc) (Relation.equal w c))
    [
      ("chain-8", Graph_gen.chain 8);
      ("tree-d3", Graph_gen.binary_tree 3);
      ("cycle+tail", Instance.parse_facts "G(a,b). G(b,a). G(b,c). G(c,d).");
      ("random-10x18", Graph_gen.random ~seed:31 10 18);
    ];
  (* divergence: while programs (= Datalog¬¬, Thm 4.5 context) can loop *)
  let flip =
    [
      While_lang.Wast.While
        ( Fo.True,
          [
            While_lang.Wast.Assign
              ( "R",
                {
                  While_lang.Wast.formula = Fo.Not (Fo.Atom ("R", [ Fo.Var "x" ]));
                  vars = [ "x" ];
                } );
          ] );
    ]
  in
  (match While_lang.Weval.run ~fuel:64 flip (Instance.parse_facts "S(a).") with
  | While_lang.Weval.Out_of_fuel _ ->
      row "  while flip-flop diverges (detected by fuel): yes\n"
  | _ -> row "  while flip-flop diverges: NO\n");
  row "  shape: compiled inflationary program agrees with the while \
       evaluator\n"

(* ---------------------------------------------------------------- E7 *)

let e7 () =
  header "E7 | Theorem 4.7: evenness needs order";
  (* evenness of a unary relation, with order: walk the succ chain *)
  let parity_prog =
    prog
      {|
      odd(X) :- first(X).
      even(X) :- odd(Y), succ(Y, X).
      odd(X) :- even(Y), succ(Y, X).
      is_even() :- last(X), even(X).
    |}
  in
  row "  %3s | %8s %8s | %s\n" "n" "even?" "correct" "generic (renaming \
       commutes)";
  List.iter
    (fun n ->
      let inst =
        Instance.of_list
          [ ("P", List.init n (fun i -> [ Value.Sym (Printf.sprintf "e%d" i) ])) ]
      in
      let ordered = Order.adjoin ~include_lt:false inst in
      let res = Datalog.Seminaive.answer parity_prog ordered "is_even" in
      let says_even = not (Relation.is_empty res) in
      (* genericity check without order: rename values, run TC-like query,
         answers commute with the renaming *)
      let rename v =
        match v with
        | Value.Sym s -> Value.Sym (s ^ "_renamed")
        | other -> other
      in
      let q = prog "Q(X) :- P(X)." in
      let direct =
        Instance.find "Q"
          (Datalog.Seminaive.eval q (Instance.map_values rename inst)).Datalog.Seminaive.instance
      in
      let routed =
        Relation.map
          (fun t -> Tuple.make (Array.map rename (Tuple.values t)))
          (Datalog.Seminaive.answer q inst "Q")
      in
      let generic = Relation.equal direct routed in
      row "  %3d | %8b %8b | %b\n" n says_even (n mod 2 = 0) generic;
      assert (says_even = (n mod 2 = 0)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  row "  without order every generic program treats the n elements \
       symmetrically,\n";
  row "  so no invention-free deterministic language expresses evenness \
       (§4.4)\n"

(* ---------------------------------------------------------------- E8 *)

let e8 () =
  header "E8 | magic sets vs full semi-naive (point reachability)";
  (* Left-recursive TC: with the query's first argument bound, the magic
     set stays {src} and only T(src, _) facts are derived. The
     right-recursive variant would propagate bindings to every suffix —
     rule form matters for magic, as the classic literature stresses. *)
  let tc_program =
    prog {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- T(X, Z), G(Z, Y).
    |}
  in
  row "  %-16s | %10s %10s %7s | %8s %8s | %s\n" "graph" "full ms" "magic ms"
    "speedup" "full |T|" "magic facts" "agree";
  List.iter
    (fun (name, inst, src) ->
      let query =
        Datalog.Ast.atom "T" [ Datalog.Ast.sym src; Datalog.Ast.var "Y" ]
      in
      let full, tf =
        time (fun () ->
            let r = Datalog.Seminaive.answer tc_program inst "T" in
            Relation.filter
              (fun t -> Value.equal (Tuple.get t 0) (Value.Sym src))
              r)
      in
      let magic, tm =
        time (fun () -> Datalog.Magic.answer tc_program inst query)
      in
      let full_all =
        Relation.cardinal (Datalog.Seminaive.answer tc_program inst "T")
      in
      let rewritten = Datalog.Magic.rewrite tc_program query in
      let magic_inst =
        Datalog.Seminaive.eval rewritten.Datalog.Magic.program
          (Instance.add_fact (fst rewritten.Datalog.Magic.seed)
             (snd rewritten.Datalog.Magic.seed)
             inst)
      in
      let magic_facts =
        Instance.total_facts
          (Instance.restrict
             (Datalog.Ast.idb rewritten.Datalog.Magic.program)
             magic_inst.Datalog.Seminaive.instance)
      in
      let full_metrics =
        collect_metrics (fun trace ->
            Datalog.Seminaive.answer ~trace tc_program inst "T")
      in
      let magic_metrics =
        collect_metrics (fun trace ->
            Datalog.Magic.answer ~trace tc_program inst query)
      in
      record ~experiment:"e8" ~case:name ~n:full_all ~engine:"seminaive-full"
        ~wall_ms:(1000. *. tf) ~stages:0 ~facts:full_all
        ~metrics:full_metrics ();
      record ~experiment:"e8" ~case:name ~n:full_all ~engine:"magic"
        ~wall_ms:(1000. *. tm) ~stages:0 ~facts:magic_facts
        ~metrics:magic_metrics ();
      row "  %-16s | %s %s %6.1fx | %8d %8d | %b\n" name (ms tf) (ms tm)
        (tf /. tm) full_all magic_facts (Relation.equal full magic))
    [
      ("chain-200", Graph_gen.chain 200, "n10");
      ("chain-300", Graph_gen.chain 300, "n20");
      ("random-120x300", Graph_gen.random ~seed:41 120 300, "n0");
      ("tree-d9", Graph_gen.binary_tree 9, "n100");
      ("grid-12x12", Graph_gen.grid 12 12, "n0");
    ];
  row "  shape: magic touches only facts reachable from the query constant\n"

(* ---------------------------------------------------------------- E9 *)

let e9 () =
  header "E9 | Theorem 4.6: Turing machines in Datalog~new";
  row "  %-18s %-10s | %6s %9s %7s | %9s | %s\n" "machine" "input" "steps"
    "invented" "stages" "time ms" "agrees";
  List.iter
    (fun (m, input) ->
      let (sim, t) =
        time (fun () -> Turing.Tm_compile.simulate m input)
      in
      let agrees = Turing.Tm_compile.agrees_with_reference m input in
      row "  %-18s %-10s | %6d %9d %7d | %s | %b\n" m.Turing.Tm.name
        (String.concat "" input)
        sim.Turing.Tm_compile.steps sim.Turing.Tm_compile.invented
        sim.Turing.Tm_compile.stages (ms t) agrees)
    [
      (Turing.Tm.unary_increment, [ "1"; "1"; "1"; "1" ]);
      (Turing.Tm.unary_increment, List.init 8 (fun _ -> "1"));
      (Turing.Tm.unary_increment, List.init 16 (fun _ -> "1"));
      (Turing.Tm.binary_increment, [ "1"; "0"; "1"; "1" ]);
      (Turing.Tm.binary_increment, [ "1"; "1"; "1"; "1" ]);
      (Turing.Tm.parity, [ "1"; "0"; "1"; "1" ]);
      (Turing.Tm.palindrome, [ "0"; "1"; "1"; "0" ]);
      (Turing.Tm.palindrome, [ "0"; "1"; "1" ]);
    ];
  row "  shape: invented values grow with steps (new time points + cells) — \
       the\n  unbounded workspace of the completeness proof\n"

(* --------------------------------------------------------------- E10 *)

let e10 () =
  header "E10 | stable models vs well-founded unknowns (win on cycles)";
  row "  %-10s | %8s %8s | %s\n" "cycle n" "unknown" "stable" "expected";
  List.iter
    (fun n ->
      let inst = Graph_gen.cycle ~name:"moves" n in
      let wf = Datalog.Wellfounded.eval win_program inst in
      let unknowns =
        Instance.total_facts (Datalog.Wellfounded.unknown wf)
      in
      let stable = Datalog.Stable.count win_program inst in
      let expected = if n mod 2 = 0 then 2 else 0 in
      assert (stable = expected);
      row "  %-10d | %8d %8d | %d\n" n unknowns stable expected)
    [ 2; 3; 4; 5; 6; 7; 8 ];
  row "  shape: even cycles have 2 alternating stable models, odd cycles \
       none;\n  the well-founded semantics leaves the whole cycle unknown\n"

(* --------------------------------------------------------------- E11 *)

let e11 () =
  header "E11 | ablation: delta (semi-naive) loop vs naive loop, inflationary \
          engine";
  (* DESIGN.md calls out the delta optimization's exactness for
     inflationary Datalog¬ — this ablates it. *)
  row "  %-18s | %10s %10s %7s | %s\n" "program/graph" "naive ms" "delta ms"
    "speedup" "agree";
  let cases =
    [
      ("tc/chain-60", tc_program, Graph_gen.chain 60);
      ("tc/random-80", tc_program, Graph_gen.random ~seed:51 80 200);
      ("ct-ex4.3/rand-10", comp_tc_inflationary, Graph_gen.random ~seed:52 10 20);
      ("closer/chain-10",
       prog
         {|
         T(X, Y) :- G(X, Y).
         T(X, Y) :- T(X, Z), G(Z, Y).
         closer(X, Y, X2, Y2) :- T(X, Y), !T(X2, Y2).
       |},
       Graph_gen.chain 10);
    ]
  in
  List.iter
    (fun (name, p, inst) ->
      let a, ta =
        time (fun () ->
            Datalog.Inflationary.eval ~strategy:Datalog.Inflationary.Naive_loop
              p inst)
      in
      let b, tb =
        time (fun () ->
            Datalog.Inflationary.eval ~strategy:Datalog.Inflationary.Delta_loop
              p inst)
      in
      let naive_metrics =
        collect_metrics (fun trace ->
            Datalog.Inflationary.eval ~trace
              ~strategy:Datalog.Inflationary.Naive_loop p inst)
      in
      let delta_metrics =
        collect_metrics (fun trace ->
            Datalog.Inflationary.eval ~trace
              ~strategy:Datalog.Inflationary.Delta_loop p inst)
      in
      record ~experiment:"e11" ~case:name
        ~n:(Instance.total_facts b.Datalog.Inflationary.instance)
        ~engine:"inflationary-naive" ~wall_ms:(1000. *. ta)
        ~stages:a.Datalog.Inflationary.stages
        ~facts:(Instance.total_facts a.Datalog.Inflationary.instance)
        ~metrics:naive_metrics ();
      record ~experiment:"e11" ~case:name
        ~n:(Instance.total_facts b.Datalog.Inflationary.instance)
        ~engine:"inflationary-delta" ~wall_ms:(1000. *. tb)
        ~stages:b.Datalog.Inflationary.stages
        ~facts:(Instance.total_facts b.Datalog.Inflationary.instance)
        ~metrics:delta_metrics ();
      row "  %-18s | %s %s %6.1fx | %b\n" name (ms ta) (ms tb) (ta /. tb)
        (Instance.equal a.Datalog.Inflationary.instance
           b.Datalog.Inflationary.instance))
    cases;
  row "  shape: deltas win most on deep recursion (chains); the ablation \
       confirms\n  exactness on negation-heavy programs too\n"

(* --------------------------------------------------------------- E12 *)

let e12 () =
  header "E12 | production-system conflict-resolution strategies (§5/§7)";
  let rules =
    prog
      {|
      reserved(I, C), !stock(I) :- order(C, I), stock(I).
      shipped(I, C), !reserved(I, C) :- reserved(I, C), carrier_ready.
      backorder(C, I) :- order(C, I), !stock(I), !reserved(I, C), !shipped(I, C).
    |}
  in
  let memory n =
    let orders =
      List.init n (fun i ->
          [ Value.Sym (Printf.sprintf "cust%d" i); Value.Sym "widget" ])
    in
    Instance.of_list
      [
        ("order", orders);
        ("stock", [ [ Value.Sym "widget" ] ]);
        ("carrier_ready", [ [] ]);
      ]
  in
  row "  %-14s %4s | %7s %9s | %8s %10s\n" "strategy" "n" "cycles" "time ms"
    "shipped" "backorders";
  List.iter
    (fun n ->
      List.iter
        (fun (name, strategy) ->
          let res, t =
            time (fun () -> Datalog.Production.run ~strategy rules (memory n))
          in
          let count p =
            Relation.cardinal
              (Instance.find p res.Datalog.Production.memory)
          in
          row "  %-14s %4d | %7d %s | %8d %10d\n" name n
            res.Datalog.Production.cycles (ms t) (count "shipped")
            (count "backorder"))
        [
          ("first", Datalog.Production.First);
          ("random", Datalog.Production.Random 17);
          ("recency", Datalog.Production.Recency);
          ("specificity", Datalog.Production.Specificity);
        ])
    [ 4; 8; 16 ];
  row "  shape: one widget, one shipment and n-1 backorders under every \
       strategy;\n  cycle counts coincide (the workload serializes), times \
       differ by match cost\n"

(* --------------------------------------------------------------- E13 *)

let e13 () =
  header "E13 | distributed evaluation and the CALM observation (§6)";
  let module N = Distributed.Netlog in
  let lrule ?(location = N.Local) src =
    { N.location; rule = Datalog.Parser.parse_rule src }
  in
  (* distributed TC: edges split across k worker peers, reach facts routed
     to a coordinator that closes them transitively *)
  let network k n =
    let chain = Graph_gen.chain n in
    let edges = Relation.to_list (Instance.find "G" chain) in
    let parts = Array.make k [] in
    List.iteri (fun i e -> parts.(i mod k) <- e :: parts.(i mod k)) edges;
    let worker i = Printf.sprintf "w%d" i in
    {
      N.peers = "coord" :: List.init k worker;
      programs =
        ("coord", [ lrule "reach(X, Y) :- reach(X, Z), reach(Z, Y)." ])
        :: List.init k (fun i ->
               ( worker i,
                 [
                   lrule ~location:(N.At_peer "coord")
                     "reach(X, Y) :- edge(X, Y).";
                 ] ));
      stores =
        List.init k (fun i ->
            ( worker i,
              Instance.set "edge"
                (Relation.of_list parts.(i))
                Instance.empty ));
    }
  in
  row "  %-18s | %8s %9s %9s | %10s | %s\n" "network" "peers" "rounds"
    "messages" "time ms" "confluent";
  List.iter
    (fun (k, n) ->
      let net = network k n in
      let out, t = time (fun () -> N.run net) in
      let reach =
        Relation.cardinal (Instance.find "reach" (N.store out "coord"))
      in
      let expected = n * (n - 1) / 2 in
      assert (reach = expected);
      let conf, tc = time (fun () -> N.confluent net) in
      row "  %-18s | %8d %9d %9d | %s | %b (%.0f ms)\n"
        (Printf.sprintf "tc k=%d n=%d" k n)
        (k + 1) out.N.rounds out.N.messages (ms t) conf (1000. *. tc))
    [ (2, 16); (4, 16); (4, 32); (8, 32) ];
  (* the non-monotone counterpoint: racing flags disagree by schedule *)
  let racing =
    {
      N.peers = [ "a"; "b" ];
      programs =
        [
          ("a", [ lrule ~location:(N.At_peer "b")
                    "blocked(a2) :- start(X), !blocked(b2)." ]);
          ("b", [ lrule ~location:(N.At_peer "a")
                    "blocked(b2) :- start(X), !blocked(a2)." ]);
        ];
      stores =
        [
          ("a", Instance.parse_facts "start(go).");
          ("b", Instance.parse_facts "start(go).");
        ];
    }
  in
  row "  racing flags (negation): confluent = %b (schedule-dependent, as \
       CALM predicts)\n"
    (N.confluent racing);
  row "  shape: monotone networks agree under every schedule; negation \
       breaks it\n"

(* --------------------------------------------------------------- E14 *)

let e14 () =
  header "E14 | monadic Datalog over trees: wrapper scaling (§6, Lixto)";
  let wrapper =
    prog
      {|
      in_results(X) :- label_results(R), child(R, X).
      in_results(X) :- in_results(Y), child(Y, X).
      good(X) :- label_product(X), in_results(X), child(X, S), label_instock(S).
      wanted(P) :- good(X), child(X, P), label_price(P).
    |}
  in
  assert (Trees.Tree.is_monadic wrapper);
  (* synthetic listing page: k products (2/3 in stock) under nested divs *)
  let page k =
    let product i =
      Trees.Tree.node "product"
        (Trees.Tree.leaf "title" :: Trees.Tree.leaf "price"
         :: (if i mod 3 = 0 then [] else [ Trees.Tree.leaf "instock" ]))
    in
    Trees.Tree.node "html"
      [
        Trees.Tree.node "div"
          [ Trees.Tree.node "results" (List.init k product) ];
        Trees.Tree.node "footer" [];
      ]
  in
  row "  %-14s | %8s %9s | %9s\n" "products" "nodes" "selected" "time ms";
  List.iter
    (fun k ->
      let t = page k in
      let n = Trees.Tree.size t in
      let sel, tm = time (fun () -> Trees.Tree.select wrapper t "wanted") in
      assert (List.length sel = k - ((k + 2) / 3));
      row "  %-14d | %8d %9d | %s\n" k n (List.length sel) (ms tm))
    [ 10; 20; 40; 80; 160 ];
  row "  shape: selection cost grows roughly linearly with tree size — the\n";
  row "  Gottlob-Koch promise that makes monadic Datalog a wrapper language\n"

(* --------------------------------------------------------------- E15 *)

let e15 () =
  header "E15 | Datalog± restricted chase and certain answers (§6)";
  let tgd = Datalog.Parser.parse_rule in
  let onto =
    [
      tgd "worksIn(E, D) :- emp(E).";
      tgd "hasManager(D, M) :- worksIn(E, D).";
      tgd "worksIn(M, D) :- hasManager(D, M).";
      tgd "emp(M) :- hasManager(D, M).";
    ]
  in
  row "  ontology: linear=%b guarded=%b weakly-acyclic=%b (restricted chase \
       still terminates)\n"
    (Ontology.Chase.is_linear onto)
    (Ontology.Chase.is_guarded onto)
    (Ontology.Chase.weakly_acyclic onto);
  row "  %-8s | %7s %7s | %10s | %s\n" "|emp|" "steps" "nulls" "chase ms"
    "|certain workers|";
  List.iter
    (fun n ->
      let inst =
        Instance.of_list
          [ ("emp", List.init n (fun i -> [ Value.Sym (Printf.sprintf "e%d" i) ])) ]
      in
      match time (fun () -> Ontology.Chase.chase onto inst) with
      | Ontology.Chase.Terminated { steps; nulls; _ }, t ->
          let ca =
            Ontology.Chase.certain_answers onto inst
              {
                Ontology.Chase.body =
                  [ Datalog.Parser.parse_atom "worksIn(E, D)" ];
                answer = [ "E" ];
              }
          in
          assert (Relation.cardinal ca = n);
          row "  %-8d | %7d %7d | %s | %d\n" n steps nulls (ms t)
            (Relation.cardinal ca)
      | Ontology.Chase.Out_of_fuel _, _ -> row "  %-8d | out of fuel\n" n)
    [ 2; 4; 8; 16; 32 ];
  row "  shape: steps and nulls grow linearly with the data; nulls never \
       leak into\n  certain answers\n"

(* ---------------------------------------------------------------- E16 *)

(* Domain-parallel evaluation: semi-naive TC on the large random graph,
   swept over the job count. Every run's instance is checked
   byte-identical against the sequential one (printing is sorted, so
   string equality is the strongest determinism check available). The
   recorded engines are "seminaive-jN"; rows carry the par.* metrics. *)
let e16 () =
  header "E16 | parallel evaluation: jobs sweep (semi-naive TC)";
  let saved_jobs = Parallel.Pool.jobs () in
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs saved_jobs)
  @@ fun () ->
  row "  %-16s %4s | %9s %7s | %6s %6s | %s\n" "graph" "j" "semi ms" "vs j1"
    "stages" "|T|" "identical";
  List.iter
    (fun (name, n, inst) ->
      let baseline = ref None in
      List.iter
        (fun jobs ->
          Parallel.Pool.set_jobs jobs;
          let rs, ts = time (fun () -> Datalog.Seminaive.eval tc_program inst) in
          let out =
            Instance.to_string rs.Datalog.Seminaive.instance
          in
          let t1, same =
            match !baseline with
            | None ->
                baseline := Some (ts, out);
                (ts, true)
            | Some (t1, out1) -> (t1, String.equal out out1)
          in
          assert same;
          let tfacts =
            Relation.cardinal (Instance.find "T" rs.Datalog.Seminaive.instance)
          in
          let metrics =
            collect_metrics (fun trace ->
                Datalog.Seminaive.eval ~trace tc_program inst)
          in
          record ~experiment:"e16" ~case:name ~n
            ~engine:(Printf.sprintf "seminaive-j%d" jobs)
            ~wall_ms:(1000. *. ts) ~stages:rs.Datalog.Seminaive.stages
            ~facts:tfacts ~metrics ();
          row "  %-16s %4d | %s %6.2fx | %6d %6d | %b\n" name jobs (ms ts)
            (t1 /. ts) rs.Datalog.Seminaive.stages tfacts same)
        [ 1; 2; 4; 8 ])
    [ ("random-1000x5000", 1000, Graph_gen.random ~seed:13 1000 5000) ];
  row "  shape: speedup tracks the machine's core count — delta slices \
       spread the\n  firing work, but one core can only interleave them\n"

(* ---------------------------------------------------------------- E17 *)

(* Safe-range compilation (lib/relational/fo) against the naive
   active-domain enumerators it replaced. Two workloads:

     - the TC-complement calculus query
         ct(x, y) = not (G(x, y) \/ exists z (G(x, z) /\ T(z, y)))
       with T the precomputed transitive closure: the oracle enumerates
       adom^2 candidate pairs and re-runs the exists-loop for each,
       while the compiled plan answers with one hash join, a union and
       an antijoin against the domain square;
     - the while-language TC program, run by Weval with ~naive:true
       (per-round enumeration) and through once-compiled plans.

   The naive while evaluator re-enumerates adom^2 every round and takes
   minutes at n = 300, so its column stops at the mid-size graph (the
   e2 naive-column convention). *)
let e17 () =
  header "E17 | safe-range compiler: FO and while, naive vs compiled";
  row "  %-24s | %9s %9s %8s | %6s | %s\n" "workload" "naive ms" "comp ms"
    "speedup" "|ans|" "agree";
  let ct_formula =
    Fo.Not
      (Fo.Or
         ( Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ]),
           Fo.Exists
             ( [ "z" ],
               Fo.And
                 ( Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "z" ]),
                   Fo.Atom ("T", [ Fo.Var "z"; Fo.Var "y" ]) ) ) ))
  in
  List.iter
    (fun (name, n, inst) ->
      let case = "fo-ct/" ^ name in
      let tc = Graph_gen.reference_tc (Instance.find "G" inst) in
      let with_tc = Instance.set "T" tc inst in
      let c, tc_ms =
        time (fun () -> Fo.eval with_tc ct_formula [ "x"; "y" ])
      in
      let nv, tn_ms =
        time (fun () -> Fo.eval_naive with_tc ct_formula [ "x"; "y" ])
      in
      let compiled_metrics =
        collect_metrics (fun trace ->
            Fo.eval ~trace with_tc ct_formula [ "x"; "y" ])
      in
      record ~experiment:"e17" ~case ~n ~engine:"fo-naive"
        ~wall_ms:(1000. *. tn_ms) ~stages:0 ~facts:(Relation.cardinal nv) ();
      record ~experiment:"e17" ~case ~n ~engine:"fo-compiled"
        ~wall_ms:(1000. *. tc_ms) ~stages:0 ~facts:(Relation.cardinal c)
        ~metrics:compiled_metrics ();
      row "  %-24s | %s %s %7.1fx | %6d | %b\n" case (ms tn_ms) (ms tc_ms)
        (tn_ms /. tc_ms) (Relation.cardinal c) (Relation.equal c nv))
    [
      ("random-100x300", 100, Graph_gen.random ~seed:11 100 300);
      ("random-300x900", 300, Graph_gen.random ~seed:12 300 900);
    ];
  let tc_query =
    {
      While_lang.Wast.formula =
        Fo.Or
          ( Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "y" ]),
            Fo.Exists
              ( [ "z" ],
                Fo.And
                  ( Fo.Atom ("G", [ Fo.Var "x"; Fo.Var "z" ]),
                    Fo.Atom ("T", [ Fo.Var "z"; Fo.Var "y" ]) ) ) );
      vars = [ "x"; "y" ];
    }
  in
  let while_tc =
    [ While_lang.Wast.While_change [ While_lang.Wast.Cumulate ("T", tc_query) ] ]
  in
  List.iter
    (fun (name, n, inst, run_naive) ->
      let case = "while-tc/" ^ name in
      let c, tc_ms =
        time (fun () -> While_lang.Weval.answer while_tc inst "T")
      in
      assert (
        Relation.equal c (Graph_gen.reference_tc (Instance.find "G" inst)));
      let compiled_metrics =
        collect_metrics (fun trace ->
            While_lang.Weval.answer ~trace while_tc inst "T")
      in
      record ~experiment:"e17" ~case ~n ~engine:"while-compiled"
        ~wall_ms:(1000. *. tc_ms) ~stages:0 ~facts:(Relation.cardinal c)
        ~metrics:compiled_metrics ();
      if run_naive then (
        let nv, tn_ms =
          time (fun () ->
              While_lang.Weval.answer ~naive:true while_tc inst "T")
        in
        record ~experiment:"e17" ~case ~n ~engine:"while-naive"
          ~wall_ms:(1000. *. tn_ms) ~stages:0 ~facts:(Relation.cardinal nv) ();
        row "  %-24s | %s %s %7.1fx | %6d | %b\n" case (ms tn_ms) (ms tc_ms)
          (tn_ms /. tc_ms) (Relation.cardinal c) (Relation.equal c nv))
      else
        row "  %-24s | %9s %s %8s | %6d | %b\n" case "-" (ms tc_ms) "-"
          (Relation.cardinal c) true)
    [
      ("random-100x300", 100, Graph_gen.random ~seed:11 100 300, true);
      ("random-300x900", 300, Graph_gen.random ~seed:12 300 900, false);
    ];
  row "  shape: the compiler turns adom^2-times-adom enumeration into \
       hash joins;\n  the gap widens with the domain and with every while \
       round that re-runs it\n"

let e18 () =
  header
    "E18 | demand-driven compilation vs full materialization (point queries)";
  (* E8's measurement re-based onto compiled plans: the same left-recursive
     TC (magic set stays {src}), but the rewritten rules are lowered to
     Algebra plans and answered patterns land in the subsumptive cache —
     so the repeat query never touches the fixpoint. *)
  let tc_program =
    prog {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- T(X, Z), G(Z, Y).
    |}
  in
  row "  %-18s | %10s %10s %10s | %8s %8s | %s\n" "graph" "full ms"
    "demand ms" "repeat ms" "speedup" "|answer|" "agree";
  List.iter
    (fun (name, n, inst, src) ->
      let query =
        Datalog.Ast.atom "T" [ Datalog.Ast.sym src; Datalog.Ast.var "Y" ]
      in
      let full, tf =
        time (fun () ->
            Relation.filter
              (fun t -> Value.equal (Tuple.get t 0) (Value.Sym src))
              (Datalog.Seminaive.answer tc_program inst "T"))
      in
      (* first demand run: a cold cache every rep (the global Fo plan memo
         still amortizes compilation, as it would across live queries) *)
      let demand, td =
        time (fun () ->
            Datalog.Demand.answer
              ~cache:(Datalog.Demand.Cache.create ())
              tc_program inst query)
      in
      (* repeat run: the pattern is in the cache, the fixpoint never runs *)
      let warm = Datalog.Demand.Cache.create () in
      ignore (Datalog.Demand.answer ~cache:warm tc_program inst query);
      let repeat, tr =
        time (fun () -> Datalog.Demand.answer ~cache:warm tc_program inst query)
      in
      let full_all =
        Relation.cardinal (Datalog.Seminaive.answer tc_program inst "T")
      in
      let full_metrics =
        collect_metrics (fun trace ->
            Datalog.Seminaive.answer ~trace tc_program inst "T")
      in
      let demand_metrics =
        collect_metrics (fun trace ->
            Datalog.Demand.answer ~trace
              ~cache:(Datalog.Demand.Cache.create ())
              tc_program inst query)
      in
      let repeat_metrics =
        collect_metrics (fun trace ->
            Datalog.Demand.answer ~trace ~cache:warm tc_program inst query)
      in
      record ~experiment:"e18" ~case:name ~n ~engine:"seminaive-full"
        ~wall_ms:(1000. *. tf) ~stages:0 ~facts:full_all
        ~metrics:full_metrics ();
      record ~experiment:"e18" ~case:name ~n ~engine:"demand"
        ~wall_ms:(1000. *. td) ~stages:0 ~facts:(Relation.cardinal demand)
        ~metrics:demand_metrics ();
      record ~experiment:"e18" ~case:name ~n ~engine:"demand-repeat"
        ~wall_ms:(1000. *. tr) ~stages:0 ~facts:(Relation.cardinal repeat)
        ~metrics:repeat_metrics ();
      row "  %-18s | %s %s %s | %7.1fx %8d | %b\n" name (ms tf) (ms td)
        (ms tr) (tf /. td)
        (Relation.cardinal demand)
        (Relation.equal full demand && Relation.equal full repeat))
    [
      ("chain-300", 300, Graph_gen.chain 300, "n20");
      ("random-120x300", 120, Graph_gen.random ~seed:41 120 300, "n0");
      ("random-1000x5000", 1000, Graph_gen.random ~seed:13 1000 5000, "n0");
    ];
  row "  shape: plans seeded by the demand relation evaluate the reachable \
       cone only;\n  the cache-hit repeat is a filter over the recorded \
       answer relation\n"

(* ---------------------------------------------------------------- E19 *)

(* Profiling overhead: the per-operator hooks in Algebra.eval must cost
   nothing when disabled (?profile defaults to None: one option match per
   node execution) and stay cheap enabled (a clock read, a frame push and
   a hashtable bump per node). Times the demand-driven TC point query —
   the deepest Algebra plan stack in the repo — with profiling off vs on.
   The disabled path's absolute budget is the separate acceptance check:
   tools/bench_diff of a fresh e2 run against the committed
   BENCH_engines.json. *)
let e19 () =
  header "E19 | operator profiling overhead (Algebra plans, demand TC)";
  let tc_program =
    prog {|
      T(X, Y) :- G(X, Y).
      T(X, Y) :- T(X, Z), G(Z, Y).
    |}
  in
  row "  %-18s | %10s %10s | %8s | %8s\n" "graph" "off ms" "on ms"
    "overhead" "|answer|";
  List.iter
    (fun (name, n, inst, src) ->
      let query =
        Datalog.Ast.atom "T" [ Datalog.Ast.sym src; Datalog.Ast.var "Y" ]
      in
      let off, t_off =
        time (fun () ->
            Datalog.Demand.answer
              ~cache:(Datalog.Demand.Cache.create ())
              tc_program inst query)
      in
      let on, t_on =
        time (fun () ->
            Datalog.Demand.answer
              ~profile:(Algebra.profile ())
              ~cache:(Datalog.Demand.Cache.create ())
              tc_program inst query)
      in
      assert (Relation.equal off on);
      record ~experiment:"e19" ~case:name ~n ~engine:"demand-noprofile"
        ~wall_ms:(1000. *. t_off) ~stages:0 ~facts:(Relation.cardinal off) ();
      record ~experiment:"e19" ~case:name ~n ~engine:"demand-profile"
        ~wall_ms:(1000. *. t_on) ~stages:0 ~facts:(Relation.cardinal on) ();
      row "  %-18s | %s %s | %+7.1f%% | %8d\n" name (ms t_off) (ms t_on)
        (100. *. (t_on -. t_off) /. t_off)
        (Relation.cardinal off))
    [
      ("chain-300", 300, Graph_gen.chain 300, "n20");
      ("random-120x300", 120, Graph_gen.random ~seed:41 120 300, "n0");
      ("random-300x900", 300, Graph_gen.random ~seed:12 300 900, "n0");
    ];
  row
    "  overhead is per-operator-execution, so it concentrates in plans \
     with many\n  cheap executions (fixpoint deltas); EXPERIMENTS.md E19 \
     records the numbers\n"

(* ---------------------------------------------------------------- E20 *)

(* Sharded exchange vs barrier merge: the two parallel semi-naive
   strategies on the same graph, swept over the job count. The merge
   strategy re-dedups every worker's full output against the global Db
   under a lock ([par.merge_ms]); the sharded strategy dedups locally
   per shard and only ships cross-shard tuples ([par.exchange_ms],
   [par.exchanged_tuples]). Both must print byte-identical instances at
   every job count. Engines are recorded as "seminaive-<strategy>-jN". *)
let e20 () =
  header "E20 | sharded exchange vs barrier merge (parallel semi-naive TC)";
  let saved_jobs = Parallel.Pool.jobs () in
  let saved_strat = Datalog.Eval_util.par_strategy () in
  Fun.protect
    ~finally:(fun () ->
      Parallel.Pool.set_jobs saved_jobs;
      Datalog.Eval_util.set_par_strategy saved_strat)
  @@ fun () ->
  row "  %-16s %4s %-6s | %9s | %8s %8s %8s | %s\n" "graph" "j" "strat"
    "semi ms" "merge" "exch" "shipped" "identical";
  List.iter
    (fun (name, n, inst) ->
      let baseline = ref None in
      List.iter
        (fun jobs ->
          List.iter
            (fun (sname, strat) ->
              Parallel.Pool.set_jobs jobs;
              Datalog.Eval_util.set_par_strategy strat;
              let rs, ts =
                time (fun () -> Datalog.Seminaive.eval tc_program inst)
              in
              let out = Instance.to_string rs.Datalog.Seminaive.instance in
              let same =
                match !baseline with
                | None ->
                    baseline := Some out;
                    true
                | Some out1 -> String.equal out out1
              in
              assert same;
              let tfacts =
                Relation.cardinal
                  (Instance.find "T" rs.Datalog.Seminaive.instance)
              in
              (* timing counters (merge_ms / exchange_ms) are as noisy as
                 wall clock, so keep the best-of-reps run: the one whose
                 sync cost is lowest *)
              let cost m =
                (match List.assoc_opt "par.merge_ms" m with
                | Some v -> v
                | None -> 0)
                +
                match List.assoc_opt "par.exchange_ms" m with
                | Some v -> v
                | None -> 0
              in
              let metrics = ref None in
              for _ = 1 to max 1 !reps do
                let m =
                  collect_metrics (fun trace ->
                      Datalog.Seminaive.eval ~trace tc_program inst)
                in
                match !metrics with
                | Some best when cost best <= cost m -> ()
                | _ -> metrics := Some m
              done;
              let metrics = Option.get !metrics in
              let metric k =
                match List.assoc_opt k metrics with Some v -> v | None -> 0
              in
              record ~experiment:"e20" ~case:name ~n
                ~engine:(Printf.sprintf "seminaive-%s-j%d" sname jobs)
                ~wall_ms:(1000. *. ts) ~stages:rs.Datalog.Seminaive.stages
                ~facts:tfacts ~metrics ();
              row "  %-16s %4d %-6s | %s | %8d %8d %8d | %b\n" name jobs sname
                (ms ts)
                (metric "par.merge_ms")
                (metric "par.exchange_ms")
                (metric "par.exchanged_tuples")
                same)
            [ ("merge", Datalog.Eval_util.Merge);
              ("shard", Datalog.Eval_util.Sharded) ])
        [ 1; 2; 4; 8 ])
    [ ("random-300x900", 300, Graph_gen.random ~seed:12 300 900) ];
  row "  shape: merge pays the global re-dedup on every derived tuple; \
       exchange\n  only touches the cross-shard slice, so its cost stays \
       below merge at j >= 2\n"

(* ---------------------------------------------------------------- E21 *)

(* The resident server: one long-lived materialization maintained
   incrementally (semi-naive deltas for asserts, DRed for retracts —
   lib/server) vs re-running semi-naive evaluation from scratch after
   every update. The same mixed read/write schedule drives both sides;
   the final T relations must be [Relation.equal]. Engines are recorded
   as "serve-incremental" and "recompute". *)
let e21 () =
  header "E21 | resident serve: incremental maintenance vs recompute";
  row "  %-18s %5s %5s | %9s | %9s | %7s | %s\n" "graph" "upd" "qry"
    "incr ms" "rescan ms" "speedup" "identical";
  List.iter
    (fun (name, n, edges, seed, nops, retract_share) ->
      let inst = Graph_gen.random ~seed n edges in
      (* deterministic mixed schedule — 40% fresh asserts,
         [retract_share]/20 retracts biased toward edges known present,
         the rest point reads — generated once up front and replayed
         identically by both sides *)
      let rng = Random.State.make [| 0x5e21; seed; nops |] in
      let live =
        ref (Relation.fold (fun t acc -> t :: acc) (Instance.find "G" inst) [])
      in
      let vtx () = Graph_gen.vertex (Random.State.int rng (n + 2)) in
      let edge () = Tuple.of_list [ vtx (); vtx () ] in
      let ops =
        List.init nops (fun _ ->
            match Random.State.int rng 20 with
            | d when d < 8 ->
                let t = edge () in
                live := t :: !live;
                `Assert t
            | d when d < 8 + retract_share -> (
                match !live with
                | [] -> `Retract (edge ())
                | l ->
                    let k = Random.State.int rng (List.length l) in
                    let t = List.nth l k in
                    live := List.filteri (fun i _ -> i <> k) l;
                    `Retract t)
            | _ -> `Query (vtx ()))
      in
      let updates =
        List.length (List.filter (function `Query _ -> false | _ -> true) ops)
      in
      let queries = nops - updates in
      let batch t = Instance.add_fact "G" t Instance.empty in
      let point v =
        Datalog.Ast.atom "T" [ Datalog.Ast.cst v; Datalog.Ast.var "Y" ]
      in
      let run_incremental trace =
        let eng = Server.Engine.create ?trace tc_program inst in
        List.iter
          (function
            | `Assert t -> ignore (Server.Engine.assert_facts eng (batch t))
            | `Retract t -> ignore (Server.Engine.retract_facts eng (batch t))
            | `Query v -> ignore (Server.Engine.query eng (point v)))
          ops;
        Instance.find "T" (Server.Engine.instance eng)
      in
      (* the baseline a resident process replaces: keep only the base
         instance, recompute the fixpoint after every update, answer
         reads by filtering the latest materialization *)
      let run_recompute () =
        let edb = ref inst in
        let mat =
          ref (Datalog.Seminaive.eval tc_program inst).Datalog.Seminaive.instance
        in
        let recompute () =
          mat := (Datalog.Seminaive.eval tc_program !edb).Datalog.Seminaive.instance
        in
        List.iter
          (function
            | `Assert t ->
                edb := Instance.add_fact "G" t !edb;
                recompute ()
            | `Retract t ->
                if Instance.mem_fact "G" t !edb then (
                  edb := Instance.remove_fact "G" t !edb;
                  recompute ())
            | `Query v ->
                ignore
                  (Relation.filter
                     (fun t -> Value.equal (Tuple.get t 0) v)
                     (Instance.find "T" !mat)))
          ops;
        Instance.find "T" !mat
      in
      let t_incr, ti = time (fun () -> run_incremental None) in
      let t_full, tf = time run_recompute in
      let same = Relation.equal t_incr t_full in
      assert same;
      let metrics = collect_metrics (fun trace -> run_incremental (Some trace)) in
      record ~experiment:"e21" ~case:name ~n ~engine:"serve-incremental"
        ~wall_ms:(1000. *. ti) ~stages:0 ~facts:(Relation.cardinal t_incr)
        ~metrics ();
      record ~experiment:"e21" ~case:name ~n ~engine:"recompute"
        ~wall_ms:(1000. *. tf) ~stages:0 ~facts:(Relation.cardinal t_full) ();
      row "  %-18s %5d %5d | %s | %s | %6.1fx | %b\n" name updates queries
        (ms ti) (ms tf) (tf /. ti) same)
    [
      ("sparse-120x119", 120, 119, 7, 200, 6);
      ("dense-120x240", 120, 240, 7, 100, 6);
      ("dense-retract-light", 120, 240, 7, 100, 1);
    ];
  row
    "  shape: recompute pays the full fixpoint per update; the resident \
     engine\n  touches only the delta cone (semi-naive up, DRed down). On \
     a dense TC the\n  deletion cone IS the view — DRed's documented worst \
     case — so the win\n  concentrates in sparse cones and retract-light \
     mixes; EXPERIMENTS.md E21\n"

(* ---------------------------------------------------------------- E22 *)

(* weighted TC for the tropical rows: the trailing Int column of a base
   fact is its MinPlus annotation (Semiring.of_edb), so ⊕ = min over
   derivations computes single-pair shortest path *)
let sp_program =
  prog {|
    T(X, Y) :- E(X, Y, W).
    T(X, Z) :- E(X, Y, W), T(Y, Z).
  |}

let e22 () =
  header "E22 | semiring annotations: Boolean guard, counting deletion, tropical";
  row "  %-22s %-22s | %9s | %s\n" "case" "engine" "wall ms" "check";
  (* a) Boolean guard — --annot bool must ride the untouched engines.
     Same graph as e2's random-300x900; the committed semiring section
     gates both rows at <5% via datalog-bench-diff. *)
  let g300 = Graph_gen.random ~seed:12 300 900 in
  (* the two sides run in one process: level the heap before each timed
     section so the gate measures the code path, not GC state inherited
     from whichever side ran first *)
  Gc.compact ();
  let rs, ts = time (fun () -> Datalog.Seminaive.eval tc_program g300) in
  let plain = rs.Datalog.Seminaive.instance in
  let tfacts = Relation.cardinal (Instance.find "T" plain) in
  Gc.compact ();
  let ra, ta =
    time (fun () -> Datalog.Annot_eval.run Semiring.Bool tc_program g300)
  in
  let bool_same = Instance.equal plain ra.Datalog.Annot_eval.instance in
  assert bool_same;
  record ~experiment:"e22" ~case:"random-300x900" ~n:300 ~engine:"seminaive"
    ~wall_ms:(1000. *. ts) ~stages:rs.Datalog.Seminaive.stages ~facts:tfacts
    ~metrics:
      (collect_metrics (fun trace ->
           Datalog.Seminaive.eval ~trace tc_program g300))
    ();
  record ~experiment:"e22" ~case:"random-300x900" ~n:300 ~engine:"seminaive"
    ~annot:"bool"
    ~wall_ms:(1000. *. ta)
    ~stages:Datalog.Annot_eval.(ra.stats.stages)
    ~facts:tfacts
    ~metrics:
      (collect_metrics (fun trace ->
           Datalog.Annot_eval.run ~trace Semiring.Bool tc_program g300))
    ();
  row "  %-22s %-22s | %s | plain path\n" "random-300x900" "seminaive" (ms ts);
  row "  %-22s %-22s | %s | identical instance (%+.1f%%)\n" "random-300x900"
    "seminaive --annot bool" (ms ta)
    (100. *. (ta -. ts) /. ts);
  (* b) counting maintenance vs DRed on the e21 dense-TC deletion
     schedule — DRed's documented worst case: every retraction
     over-deletes the whole cone and re-derives the survivors, while
     counting decrements support counts and deletes only the facts that
     reach zero (plus the well-foundedness check on what it touched) *)
  List.iter
    (fun (name, n, edges, seed, nops, retract_share) ->
      let inst = Graph_gen.random ~seed n edges in
      let rng = Random.State.make [| 0x5e22; seed; nops |] in
      let live =
        ref (Relation.fold (fun t acc -> t :: acc) (Instance.find "G" inst) [])
      in
      let vtx () = Graph_gen.vertex (Random.State.int rng (n + 2)) in
      let edge () = Tuple.of_list [ vtx (); vtx () ] in
      let ops =
        List.init nops (fun _ ->
            if Random.State.int rng 20 < retract_share then (
              match !live with
              | [] -> `Retract (edge ())
              | l ->
                  let k = Random.State.int rng (List.length l) in
                  let t = List.nth l k in
                  live := List.filteri (fun i _ -> i <> k) l;
                  `Retract t)
            else
              let t = edge () in
              live := t :: !live;
              `Assert t)
      in
      let batch t = Instance.add_fact "G" t Instance.empty in
      let run maintenance trace =
        let eng = Server.Engine.create ?trace ~maintenance tc_program inst in
        List.iter
          (function
            | `Assert t -> ignore (Server.Engine.assert_facts eng (batch t))
            | `Retract t -> ignore (Server.Engine.retract_facts eng (batch t)))
          ops;
        eng
      in
      let dred_eng, td = time (fun () -> run Server.Engine.Dred None) in
      let cnt_eng, tc = time (fun () -> run Server.Engine.Counting None) in
      let same =
        Instance.equal
          (Server.Engine.instance dred_eng)
          (Server.Engine.instance cnt_eng)
      in
      assert same;
      assert (Server.Engine.audit_counts cnt_eng = []);
      record ~experiment:"e22" ~case:name ~n ~engine:"serve-dred"
        ~wall_ms:(1000. *. td) ~stages:0
        ~facts:
          (Relation.cardinal
             (Instance.find "T" (Server.Engine.instance dred_eng)))
        ~metrics:
          (collect_metrics (fun trace ->
               ignore (run Server.Engine.Dred (Some trace))))
        ();
      record ~experiment:"e22" ~case:name ~n ~engine:"serve-counting"
        ~annot:"count" ~wall_ms:(1000. *. tc) ~stages:0
        ~facts:
          (Relation.cardinal
             (Instance.find "T" (Server.Engine.instance cnt_eng)))
        ~metrics:
          (collect_metrics (fun trace ->
               ignore (run Server.Engine.Counting (Some trace))))
        ();
      row "  %-22s %-22s | %s | identical final state\n" name "serve-dred"
        (ms td);
      row "  %-22s %-22s | %s | %.1fx vs DRed, audit clean\n" name
        "serve-counting" (ms tc) (td /. tc))
    [
      ("dense-120x240", 120, 240, 7, 100, 6);
      ("dense-retract-heavy", 120, 240, 7, 80, 12);
    ];
  (* c) tropical shortest path vs a hand-rolled all-pairs Dijkstra on a
     random positively-weighted graph: every T annotation must equal the
     Dijkstra distance, and the supports must coincide with reachability *)
  let wn, wm = 80, 240 in
  let wrng = Random.State.make [| 0x5e22; wn; wm |] in
  let wedges =
    List.init wm (fun _ ->
        ( Random.State.int wrng wn,
          Random.State.int wrng wn,
          1 + Random.State.int wrng 9 ))
  in
  let winst =
    Instance.set "E"
      (Relation.of_rows
         (List.map
            (fun (x, y, w) ->
              [ Graph_gen.vertex x; Graph_gen.vertex y; Value.Int w ])
            wedges))
      Instance.empty
  in
  let rt, tt =
    time (fun () -> Datalog.Annot_eval.run Semiring.MinPlus sp_program winst)
  in
  let inf = max_int / 2 in
  let dijkstra () =
    (* O(n^2) selection Dijkstra per source — no heap, weights >= 1 *)
    let adj = Array.make wn [] in
    List.iter (fun (x, y, w) -> adj.(x) <- (y, w) :: adj.(x)) wedges;
    Array.init wn (fun src ->
        let dist = Array.make wn inf in
        let vis = Array.make wn false in
        (* the source's own distance is 0 only through an actual walk:
           seed the frontier with the out-edges instead, matching the
           TC semantics where T(x, x) needs a cycle through x *)
        List.iter (fun (y, w) -> dist.(y) <- min dist.(y) w) adj.(src);
        let rec loop () =
          let u = ref (-1) in
          for v = 0 to wn - 1 do
            if (not vis.(v)) && dist.(v) < inf
               && (!u = -1 || dist.(v) < dist.(!u))
            then u := v
          done;
          if !u >= 0 then (
            vis.(!u) <- true;
            List.iter
              (fun (y, w) ->
                if dist.(!u) + w < dist.(y) then dist.(y) <- dist.(!u) + w)
              adj.(!u);
            loop ())
        in
        loop ();
        dist)
  in
  let dist, tdij = time dijkstra in
  let trop_ok = ref true in
  for i = 0 to wn - 1 do
    for j = 0 to wn - 1 do
      let tup = Tuple.of_list [ Graph_gen.vertex i; Graph_gen.vertex j ] in
      let got = Datalog.Annot_eval.annotation rt "T" tup in
      let want =
        if dist.(i).(j) = inf then Semiring.W Semiring.minplus_zero
        else Semiring.W dist.(i).(j)
      in
      if not (Semiring.equal_v got want) then trop_ok := false
    done
  done;
  assert !trop_ok;
  let tsupport = Relation.cardinal (Instance.find "T" rt.Datalog.Annot_eval.instance) in
  record ~experiment:"e22"
    ~case:(Printf.sprintf "weighted-%dx%d" wn wm)
    ~n:wn ~engine:"annot-minplus" ~annot:"minplus"
    ~wall_ms:(1000. *. tt)
    ~stages:Datalog.Annot_eval.(rt.stats.stages)
    ~facts:tsupport
    ~metrics:
      (collect_metrics (fun trace ->
           Datalog.Annot_eval.run ~trace Semiring.MinPlus sp_program winst))
    ();
  record ~experiment:"e22"
    ~case:(Printf.sprintf "weighted-%dx%d" wn wm)
    ~n:wn ~engine:"dijkstra-oracle" ~wall_ms:(1000. *. tdij) ~stages:0
    ~facts:tsupport ();
  row "  %-22s %-22s | %s | all %d distances match\n"
    (Printf.sprintf "weighted-%dx%d" wn wm)
    "annot-minplus" (ms tt) tsupport;
  row "  %-22s %-22s | %s | hand-rolled oracle\n"
    (Printf.sprintf "weighted-%dx%d" wn wm)
    "dijkstra-oracle" (ms tdij);
  row
    "  shape: --annot bool is the untouched hot path (<5%% gate); counting \
     deletion\n  skips DRed's over-delete/re-derive churn on dense TC; \
     MinPlus = Dijkstra\n"

(* ---------------------------------------------------- bechamel kernels *)

let bechamel_kernels () =
  header "Bechamel micro-benchmarks (monotonic clock, OLS estimate)";
  let open Bechamel in
  let chain40 = Graph_gen.chain 40 in
  let win40 = Graph_gen.random ~name:"moves" ~seed:21 30 60 in
  let two5 = Graph_gen.two_cycles 5 in
  let tests =
    [
      Test.make ~name:"naive-tc-chain40"
        (Staged.stage (fun () -> ignore (Datalog.Naive.eval tc_program chain40)));
      Test.make ~name:"seminaive-tc-chain40"
        (Staged.stage (fun () ->
             ignore (Datalog.Seminaive.eval tc_program chain40)));
      Test.make ~name:"stratified-ct-chain24"
        (let g = Graph_gen.chain 24 in
         Staged.stage (fun () ->
             ignore (Datalog.Stratified.eval comp_tc_stratified g)));
      Test.make ~name:"wellfounded-win-random30"
        (Staged.stage (fun () ->
             ignore (Datalog.Wellfounded.eval win_program win40)));
      Test.make ~name:"enumerate-orientations-k5"
        (Staged.stage (fun () ->
             ignore (Nondet.Enumerate.effect orientation_program two5)));
      Test.make ~name:"magic-point-chain200"
        (let g = Graph_gen.chain 200 in
         let left_tc =
           prog {|
             T(X, Y) :- G(X, Y).
             T(X, Y) :- T(X, Z), G(Z, Y).
           |}
         in
         let q = Datalog.Ast.atom "T" [ Datalog.Ast.sym "n10"; Datalog.Ast.var "Y" ] in
         Staged.stage (fun () -> ignore (Datalog.Magic.answer left_tc g q)));
      Test.make ~name:"tm-unary-increment-8"
        (Staged.stage (fun () ->
             ignore
               (Turing.Tm_compile.simulate Turing.Tm.unary_increment
                  (List.init 8 (fun _ -> "1")))));
    ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg [ clock ] test
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name raw ->
          match
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              clock raw
          with
          | exception _ -> Printf.printf "  %-28s (analysis failed)\n" name
          | est -> (
              match Analyze.OLS.estimates est with
              | Some [ t ] -> Printf.printf "  %-28s %12.0f ns/run\n" name t
              | _ -> Printf.printf "  %-28s (no estimate)\n" name))
        results)
    tests

(* ------------------------------------------------------------- driver *)

let all =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15);
    ("e16", e16); ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20);
    ("e21", e21); ("e22", e22);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --json <file>: after the selected experiments run, dump the recorded
     timing rows (experiment, case, n, engine, wall ms, stages, facts). *)
  let rec split_json acc = function
    | [] -> (List.rev acc, None)
    | "--json" :: file :: rest -> (List.rev acc @ rest, Some file)
    | [ "--json" ] ->
        Printf.eprintf "--json requires a file argument\n";
        exit 2
    | "--reps" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> reps := k
        | _ ->
            Printf.eprintf "--reps requires a positive integer\n";
            exit 2);
        split_json acc rest
    | [ "--reps" ] ->
        Printf.eprintf "--reps requires a positive integer\n";
        exit 2
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some k when k >= 1 -> Parallel.Pool.set_jobs k
        | _ ->
            Printf.eprintf "--jobs requires a positive integer\n";
            exit 2);
        split_json acc rest
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs requires a positive integer\n";
        exit 2
    | a :: rest -> split_json (a :: acc) rest
  in
  let args, json_file = split_json [] args in
  (match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) all;
      bechamel_kernels ()
  | [ "bechamel" ] -> bechamel_kernels ()
  | ids ->
      List.iter
        (fun id ->
          match List.assoc_opt id all with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %s (e1..e22, bechamel)\n" id;
              exit 2)
        ids);
  match json_file with None -> () | Some file -> write_json file
